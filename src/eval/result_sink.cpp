#include "eval/result_sink.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "eval/figures.hpp"

namespace qolsr {

DistributionSummary summarize_distribution(
    const util::DistributionAccumulator& dist) {
  DistributionSummary summary;
  summary.count = dist.count();
  if (dist.empty()) return summary;
  // Everything derives from the one sorted copy — including the mean,
  // whose floating-point summation order must not depend on how many
  // worker threads contributed samples.
  const std::vector<double> sorted = dist.sorted();
  double sum = 0.0;
  for (const double x : sorted) sum += x;
  summary.mean = sum / static_cast<double>(sorted.size());
  summary.p50 = util::quantile_sorted(sorted, 0.50);
  summary.p95 = util::quantile_sorted(sorted, 0.95);
  summary.p99 = util::quantile_sorted(sorted, 0.99);
  summary.min = sorted.front();
  summary.max = sorted.back();
  summary.histogram = util::histogram_sorted(
      sorted, summary.min, summary.max, kDistributionHistogramBuckets);
  return summary;
}

namespace {

/// Shortest-ish decimal that round-trips our aggregate magnitudes; stable
/// across platforms for the golden-output tests ("2" not "2.000000").
std::string fmt(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.10g", v);
  return buffer;
}

std::string json_escape(std::string_view text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buffer[8];
      std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                    static_cast<unsigned>(c));
      out += buffer;
    } else {
      out += c;
    }
  }
  return out;
}

/// JSON has no literal for non-finite numbers; an infinite overhead (zero
/// additive optimum beaten by a nonzero route) becomes null.
std::string json_num(double v) {
  return std::isfinite(v) ? fmt(v) : "null";
}

std::string json_stats(const util::RunningStats& s) {
  return "{\"mean\": " + json_num(s.mean()) +
         ", \"stddev\": " + json_num(s.stddev()) +
         ", \"min\": " + json_num(s.min()) + ", \"max\": " + json_num(s.max()) +
         "}";
}

/// Long-format CSV of a dynamics (epoch-loop) result: one row per
/// (sweep point, protocol), the sweep axis labeled by its meaning. Every
/// attempted epoch packet had a connected (source, destination) pair;
/// `failed` counts all undelivered packets and `stale_losses` the subset
/// dropped handing off over a vanished advertised link (kStaleLink) —
/// the losses chargeable specifically to advertisement age.
void write_dynamic_csv(const ExperimentResult& result, std::ostream& os) {
  os << "metric," << sweep_axis_name(result.spec.scenario.sweep_axis)
     << ",runs,epochs,avg_nodes,protocol,set_size_mean,set_size_stddev,"
        "packets,delivered,failed,stale_losses,delivery_ratio,overhead_mean,"
        "stretch_mean,path_hops_mean,readvertised_mean\n";
  const std::string metric{metric_name(result.spec.metric)};
  for (const DensityStats& d : result.sweep) {
    for (const ProtocolStats& p : d.protocols) {
      os << metric << ',' << fmt(d.density) << ',' << d.runs << ','
         << result.spec.scenario.dynamics.epochs << ','
         << fmt(d.node_count.mean()) << ',' << p.name << ','
         << fmt(p.set_size.mean()) << ',' << fmt(p.set_size.stddev()) << ','
         << p.delivered + p.failed << ',' << p.delivered << ',' << p.failed
         << ',' << p.stale_losses << ',' << fmt(p.delivery_ratio()) << ','
         << fmt(p.overhead.mean()) << ',' << fmt(p.stretch.mean()) << ','
         << fmt(p.path_hops.mean()) << ',' << fmt(p.readvertised.mean())
         << '\n';
    }
  }
}

/// The fault-engine columns/fields exist only where they can be nonzero:
/// a packet-backend result whose scenario carries an active FaultPlan or
/// sweeps the loss axis. Everything else — including a packet sweep with
/// no fault flags — keeps its pre-fault-engine byte layout, which is what
/// the fault-free golden pins (and the figure-R loss = 0 column check)
/// hold the engine to.
bool fault_mode(const ExperimentSpec& spec) {
  return spec.backend == BackendId::kPacket &&
         (spec.scenario.faults.active() ||
          spec.scenario.sweep_axis == Scenario::SweepAxis::kLoss);
}

/// Same opt-in discipline for the traffic-workload columns/fields: they
/// exist only where a flow schedule can have run — a packet-backend result
/// whose scenario carries an active TrafficSpec or sweeps the load axis.
/// A packet sweep with no traffic flags keeps its pre-traffic byte layout.
bool traffic_mode(const ExperimentSpec& spec) {
  return spec.backend == BackendId::kPacket &&
         (spec.scenario.traffic.active() ||
          spec.scenario.sweep_axis == Scenario::SweepAxis::kLoad);
}

/// Same opt-in discipline for the adversary-engine columns/fields: they
/// exist only where a roster (or the wire-corruption gate) can have run —
/// a packet-backend result whose scenario carries an active AdversarySpec
/// or sweeps the adversary axis. A packet sweep with no adversary flags
/// keeps its pre-adversary byte layout.
bool adversary_mode(const ExperimentSpec& spec) {
  return spec.backend == BackendId::kPacket &&
         (spec.scenario.adversaries.active() ||
          spec.scenario.sweep_axis == Scenario::SweepAxis::kAdversary);
}

/// JSON object form of a DistributionSummary.
std::string json_distribution(const util::DistributionAccumulator& dist) {
  const DistributionSummary s = summarize_distribution(dist);
  std::string out = "{\"count\": " + std::to_string(s.count) +
                    ", \"mean\": " + json_num(s.mean) +
                    ", \"p50\": " + json_num(s.p50) +
                    ", \"p95\": " + json_num(s.p95) +
                    ", \"p99\": " + json_num(s.p99) +
                    ", \"min\": " + json_num(s.min) +
                    ", \"max\": " + json_num(s.max) + ", \"histogram\": [";
  for (std::size_t i = 0; i < s.histogram.size(); ++i)
    out += (i ? ", " : "") + std::to_string(s.histogram[i]);
  out += "]}";
  return out;
}

/// The 12 aggregate columns shared by both static CSV layouts (oracle and
/// packet) — one writer, so the "figure tooling reads either" contract
/// cannot drift between the two. The sweep-axis column is labeled by its
/// meaning; for the default density axis this is byte-identical to the
/// pre-loss-axis header.
std::string static_csv_header(const ExperimentSpec& spec) {
  return std::string("metric,") + sweep_axis_name(spec.scenario.sweep_axis) +
         ",runs,avg_nodes,protocol,set_size_mean,"
         "set_size_stddev,delivered,failed,overhead_mean,overhead_stddev,"
         "path_hops_mean";
}

void write_static_csv_row_prefix(const ExperimentResult& result,
                                 const DensityStats& d,
                                 const ProtocolStats& p, std::ostream& os) {
  os << metric_name(result.spec.metric) << ',' << fmt(d.density) << ','
     << d.runs << ',' << fmt(d.node_count.mean()) << ',' << p.name << ','
     << fmt(p.set_size.mean()) << ',' << fmt(p.set_size.stddev()) << ','
     << p.delivered << ',' << p.failed << ',' << fmt(p.overhead.mean()) << ','
     << fmt(p.overhead.stddev()) << ',' << fmt(p.path_hops.mean());
}

/// The optional per-run-records block shared by both static CSV layouts:
/// a second header+rows table after a blank line, present only when the
/// result recorded runs.
void write_run_records_csv(const ExperimentResult& result, std::ostream& os) {
  bool has_records = false;
  for (const DensityStats& d : result.sweep)
    has_records = has_records || !d.run_records.empty();
  if (!has_records) return;

  // Packet-backend records additionally carry the per-run control-plane
  // outcome — convergence time, the honest converged flag, control bytes,
  // and the probe split; the oracle layout is pinned and keeps its form.
  const bool packet = result.spec.backend == BackendId::kPacket;
  const bool traffic = traffic_mode(result.spec);
  const bool adversary = adversary_mode(result.spec);
  os << '\n' << sweep_axis_name(result.spec.scenario.sweep_axis)
     << ",run,nodes,protocol,set_size,delivered,value,overhead,path_hops";
  if (packet)
    os << ",convergence_time,converged,control_bytes,probes_delivered,"
          "probes_failed";
  if (traffic) os << ",traffic_offered,traffic_delivered,traffic_latency_p95";
  if (adversary) os << ",invariant_violations,poisoned_routes";
  os << '\n';
  for (const DensityStats& d : result.sweep) {
    for (const RunRecord& r : d.run_records) {
      for (std::size_t si = 0; si < r.protocols.size(); ++si) {
        const RunRecord::Protocol& rp = r.protocols[si];
        os << fmt(d.density) << ',' << r.run_index << ',' << r.nodes << ','
           << d.protocols[si].name << ',' << fmt(rp.set_size) << ','
           << (rp.delivered ? 1 : 0) << ',';
        if (rp.delivered || (packet && rp.probes_delivered > 0)) {
          os << fmt(rp.value) << ',' << fmt(rp.overhead) << ',' << rp.hops;
        } else {
          os << ",,";
        }
        if (packet) {
          os << ',' << fmt(rp.convergence_time) << ',' << (rp.converged ? 1 : 0)
             << ',' << fmt(rp.control_bytes) << ',' << rp.probes_delivered
             << ',' << rp.probes_failed;
        }
        if (traffic) {
          os << ',' << rp.traffic_offered << ',' << rp.traffic_delivered
             << ',' << fmt(rp.traffic_latency_p95);
        }
        if (adversary) {
          os << ',' << rp.invariant_violations << ',' << rp.poisoned_routes;
        }
        os << '\n';
      }
    }
  }
}

/// Long-format CSV of a packet-backend result: the oracle columns (same
/// order, so figure tooling reads either) followed by the control-plane
/// block the oracle cannot measure — per-run mean message/byte counts,
/// duplicate-set hits, and the measured convergence time.
void write_packet_csv(const ExperimentResult& result, std::ostream& os) {
  const bool faults = fault_mode(result.spec);
  const bool traffic = traffic_mode(result.spec);
  const bool adversary = adversary_mode(result.spec);
  os << static_csv_header(result.spec)
     << ",hello_msgs_mean,tc_msgs_mean,tc_forwards_mean,"
        "duplicate_drops_mean,control_bytes_mean,convergence_time_mean,"
        "convergence_time_stddev,unconverged_runs";
  if (faults)
    os << ",loss_rate,probes,delivery_ratio,no_route_drops,loop_drops,"
          "medium_drops,frames_lost_mean,frames_blocked_mean,"
          "reconvergence_time_mean,reconv_unconverged,probe_delivery_p50,"
          "probe_delivery_p95,probe_delivery_p99";
  if (traffic)
    os << ",load,offered,traffic_delivered,traffic_delivery_ratio,"
          "queue_drops,traffic_no_route_drops,traffic_loop_drops,"
          "traffic_medium_drops,latency_p50,latency_p95,latency_p99,"
          "flow_delivery_p50,flow_delivery_p95,flow_delivery_p99,"
          "throughput_p50,throughput_p95,throughput_p99";
  if (adversary)
    os << ",adversary_fraction,adversary_count,corrupt_rate,"
          "adversary_delivery_ratio,invariant_violations,forwarding_loops,"
          "blackhole_absorptions,mpr_refusals,ansn_regressions,"
          "stale_tc_rejections,phantom_links,inflated_qos,poisoned_nodes,"
          "poisoned_routes,frames_corrupted_mean,frames_malformed_mean,"
          "first_violation_mean";
  os << '\n';
  const bool loss_axis =
      result.spec.scenario.sweep_axis == Scenario::SweepAxis::kLoss;
  const bool load_axis =
      result.spec.scenario.sweep_axis == Scenario::SweepAxis::kLoad;
  const bool adversary_axis =
      result.spec.scenario.sweep_axis == Scenario::SweepAxis::kAdversary;
  for (const DensityStats& d : result.sweep) {
    for (const ProtocolStats& p : d.protocols) {
      write_static_csv_row_prefix(result, d, p, os);
      os << ',' << fmt(p.control.hello_msgs.mean()) << ','
         << fmt(p.control.tc_msgs.mean()) << ','
         << fmt(p.control.tc_forwards.mean()) << ','
         << fmt(p.control.duplicate_drops.mean()) << ','
         << fmt(p.control.control_bytes.mean()) << ','
         << fmt(p.control.convergence_time.mean()) << ','
         << fmt(p.control.convergence_time.stddev()) << ','
         << p.control.unconverged;
      if (faults) {
        const double loss_rate =
            loss_axis ? d.density : result.spec.scenario.faults.loss_rate;
        const DistributionSummary probe_delivery =
            summarize_distribution(p.probe_delivery);
        os << ',' << fmt(loss_rate) << ','
           << result.spec.scenario.probe_packets << ','
           << fmt(p.delivery_ratio()) << ',' << p.no_route_losses << ','
           << p.loop_losses << ',' << p.medium_losses << ','
           << fmt(p.control.frames_lost.mean()) << ','
           << fmt(p.control.frames_blocked.mean()) << ','
           << fmt(p.control.reconvergence_time.mean()) << ','
           << p.control.reconv_unconverged << ','
           << fmt(probe_delivery.p50) << ',' << fmt(probe_delivery.p95)
           << ',' << fmt(probe_delivery.p99);
      }
      if (traffic) {
        const double load =
            load_axis ? d.density : result.spec.scenario.traffic.load;
        const DistributionSummary latency =
            summarize_distribution(p.traffic.latency);
        const DistributionSummary flow_delivery =
            summarize_distribution(p.traffic.flow_delivery);
        const DistributionSummary throughput =
            summarize_distribution(p.traffic.flow_throughput);
        os << ',' << fmt(load) << ',' << p.traffic.offered << ','
           << p.traffic.delivered << ','
           << fmt(p.traffic.delivery_ratio()) << ','
           << p.traffic.queue_drops << ',' << p.traffic.no_route_drops
           << ',' << p.traffic.loop_drops << ',' << p.traffic.medium_drops
           << ',' << fmt(latency.p50) << ',' << fmt(latency.p95) << ','
           << fmt(latency.p99) << ',' << fmt(flow_delivery.p50) << ','
           << fmt(flow_delivery.p95) << ',' << fmt(flow_delivery.p99)
           << ',' << fmt(throughput.p50) << ',' << fmt(throughput.p95)
           << ',' << fmt(throughput.p99);
      }
      if (adversary) {
        const AdversarySpec& adv = result.spec.scenario.adversaries;
        const double fraction =
            adversary_axis ? d.density : (adv.fraction >= 0.0 ? adv.fraction
                                                              : 0.0);
        const InvariantCounters& c = p.invariants.counters;
        os << ',' << fmt(fraction) << ',' << adv.count << ','
           << fmt(adv.corrupt_rate) << ',' << fmt(p.delivery_ratio()) << ','
           << c.total() << ',' << c.forwarding_loops << ','
           << c.blackhole_absorptions << ',' << c.mpr_refusals << ','
           << c.ansn_regressions << ',' << c.stale_tc_rejections << ','
           << c.phantom_links << ',' << c.inflated_qos << ','
           << c.poisoned_nodes << ',' << p.invariants.poisoned_routes << ','
           << fmt(p.invariants.frames_corrupted.mean()) << ','
           << fmt(p.invariants.frames_malformed.mean()) << ','
           << fmt(p.invariants.time_to_first_violation.mean());
      }
      os << '\n';
    }
  }
  write_run_records_csv(result, os);
}

}  // namespace

void PrettyTableSink::write(const ExperimentResult& result,
                            std::ostream& os) const {
  const ExperimentSpec& spec = result.spec;
  const bool dynamic = spec.scenario.dynamics.enabled();
  const std::string axis = sweep_axis_name(spec.scenario.sweep_axis);
  os << "# " << spec.name << " — metric=" << metric_name(spec.metric)
     << " runs/density=" << spec.scenario.runs << " seed=" << spec.scenario.seed
     << "\n";
  if (spec.backend == BackendId::kPacket)
    os << "# backend=packet — discrete-event HELLO/TC simulation, measured "
          "from converged protocol state\n";
  const bool faults = fault_mode(spec);
  if (faults) {
    os << "# faults: loss="
       << (spec.scenario.sweep_axis == Scenario::SweepAxis::kLoss
               ? "<sweep axis>"
               : fmt(spec.scenario.faults.loss_rate))
       << " incidents=" << spec.scenario.faults.incidents.size()
       << " probes/run=" << spec.scenario.probe_packets << "\n";
  }
  const bool traffic = traffic_mode(spec);
  if (traffic) {
    const TrafficSpec& t = spec.scenario.traffic;
    os << "# traffic: arrival=" << traffic_arrival_name(t.arrival)
       << " pattern=" << traffic_pattern_name(t.pattern)
       << " flows=" << t.flows << " load="
       << (spec.scenario.sweep_axis == Scenario::SweepAxis::kLoad
               ? "<sweep axis>"
               : fmt(t.load))
       << "\n";
  }
  const bool adversary = adversary_mode(spec);
  if (adversary) {
    const AdversarySpec& adv = spec.scenario.adversaries;
    std::string kinds;
    for (const AdversaryKind kind : adv.kinds) {
      if (!kinds.empty()) kinds += ",";
      kinds += adversary_kind_name(kind);
    }
    os << "# adversaries: roster="
       << (spec.scenario.sweep_axis == Scenario::SweepAxis::kAdversary
               ? "<sweep axis>"
               : std::to_string(adv.count))
       << " kinds=" << (kinds.empty() ? "none" : kinds)
       << " corrupt=" << fmt(adv.corrupt_rate) << "\n";
  }
  if (dynamic) {
    const DynamicsSpec& dyn = spec.scenario.dynamics;
    os << "# mobility="
       << (dyn.model == DynamicsSpec::Model::kWaypoint ? "waypoint" : "churn")
       << " epochs/run=" << dyn.epochs << " refresh=" << dyn.refresh_interval
       << "\n";
  }
  os << "\n## advertised set size (mean |ANS| per node)\n"
     << set_size_table(result.sweep, axis).to_string();
  if (dynamic)
    os << "\n## delivery ratio / hop stretch / TC re-advertisements\n"
       << dynamics_table(result.sweep, axis).to_string();
  os << "\n## QoS overhead vs. centralized optimum\n"
     << overhead_table(result.sweep, axis).to_string();
  os << "\n## diagnostics\n"
     << diagnostics_table(result.sweep, axis).to_string();
  if (faults)
    os << "\n## graceful degradation (delivery ratio, blackhole drops, mean "
          "re-convergence seconds after injected faults)\n"
       << degradation_table(result.sweep, axis).to_string();
  if (traffic)
    os << "\n## traffic under load (flow delivery ratio, queue-tail drops, "
          "p95 end-to-end latency in ms)\n"
       << traffic_table(result.sweep, axis).to_string();
  if (adversary)
    os << "\n## adversary engine (delivery ratio, invariant violations "
          "caught by the runtime monitor, poisoned routes)\n"
       << invariants_table(result.sweep, axis).to_string();
  bool has_control = false;
  for (const DensityStats& d : result.sweep)
    for (const ProtocolStats& p : d.protocols)
      has_control = has_control || p.control.measured();
  if (has_control) {
    os << "\n## control plane (mean per run: TC messages incl. forwards, "
          "broadcast bytes, measured convergence seconds)\n"
       << control_plane_table(result.sweep, axis).to_string();
    std::size_t unconverged = 0;
    for (const DensityStats& d : result.sweep)
      for (const ProtocolStats& p : d.protocols)
        unconverged += p.control.unconverged;
    if (unconverged > 0)
      os << "\nWARNING: " << unconverged
         << " simulation run(s) hit the hard time cap before the control "
            "plane quiesced; their measurements are from unconverged state "
            "(see the unconverged_runs column in csv/json).\n";
    std::size_t reconv_unconverged = 0;
    for (const DensityStats& d : result.sweep)
      for (const ProtocolStats& p : d.protocols)
        reconv_unconverged += p.control.reconv_unconverged;
    if (reconv_unconverged > 0)
      os << "\nWARNING: " << reconv_unconverged
         << " post-fault re-convergence window(s) hit the hard time cap "
            "still changing; their reconvergence_time samples are lower "
            "bounds (see reconv_unconverged in csv/json).\n";
  }
  std::size_t records = 0;
  for (const DensityStats& d : result.sweep) records += d.run_records.size();
  if (records > 0)
    os << "\n(" << records
       << " per-run records recorded; use --format=csv or json to export "
          "them)\n";
}

void CsvSink::write(const ExperimentResult& result, std::ostream& os) const {
  if (result.spec.scenario.dynamics.enabled())
    return write_dynamic_csv(result, os);
  // The packet backend carries the extra control-plane columns; the oracle
  // layout is pinned byte-exact by the golden-figure tests and must not
  // move.
  if (result.spec.backend == BackendId::kPacket)
    return write_packet_csv(result, os);
  os << static_csv_header(result.spec) << '\n';
  for (const DensityStats& d : result.sweep) {
    for (const ProtocolStats& p : d.protocols) {
      write_static_csv_row_prefix(result, d, p, os);
      os << '\n';
    }
  }
  write_run_records_csv(result, os);
}

void JsonSink::write(const ExperimentResult& result, std::ostream& os) const {
  const ExperimentSpec& spec = result.spec;
  os << "{\n";
  os << "  \"name\": \"" << json_escape(spec.name) << "\",\n";
  // Only the non-default backend is echoed: pre-existing oracle documents
  // stay byte-identical.
  if (spec.backend != BackendId::kOracle)
    os << "  \"backend\": \"" << backend_name(spec.backend) << "\",\n";
  os << "  \"metric\": \"" << metric_name(spec.metric) << "\",\n";
  os << "  \"metric_kind\": \""
     << (metric_kind(spec.metric) == MetricKind::kConcave ? "concave"
                                                          : "additive")
     << "\",\n";
  os << "  \"selectors\": [";
  for (std::size_t i = 0; i < spec.selectors.size(); ++i)
    os << (i ? ", " : "") << '"' << json_escape(spec.selectors[i]) << '"';
  os << "],\n";
  os << "  \"runs\": " << spec.scenario.runs << ",\n";
  os << "  \"seed\": " << spec.scenario.seed << ",\n";
  os << "  \"threads\": " << spec.threads << ",\n";
  const bool dynamic = spec.scenario.dynamics.enabled();
  const bool faults = fault_mode(spec);
  const bool traffic = traffic_mode(spec);
  const bool adversary = adversary_mode(spec);
  if (traffic) {
    const TrafficSpec& t = spec.scenario.traffic;
    if (!faults)
      os << "  \"axis\": \"" << sweep_axis_name(spec.scenario.sweep_axis)
         << "\",\n";
    os << "  \"traffic\": {\"arrival\": \"" << traffic_arrival_name(t.arrival)
       << "\", \"pattern\": \"" << traffic_pattern_name(t.pattern)
       << "\", \"flows\": " << t.flows
       << ", \"load\": " << fmt(t.load)
       << ", \"packet_rate\": " << fmt(t.packet_rate)
       << ", \"duration\": " << fmt(t.duration)
       << ", \"packet_bytes\": " << t.packet_bytes
       << ", \"link_capacity\": " << fmt(t.link_capacity)
       << ", \"queue_bytes\": " << t.queue_bytes << "},\n";
  }
  if (faults) {
    const FaultPlan& plan = spec.scenario.faults;
    std::size_t crashes = 0, flaps = 0, partitions = 0;
    for (const FaultIncident& incident : plan.incidents) {
      switch (incident.kind) {
        case FaultIncident::Kind::kNodeCrash: ++crashes; break;
        case FaultIncident::Kind::kLinkFlap: ++flaps; break;
        case FaultIncident::Kind::kPartition: ++partitions; break;
      }
    }
    os << "  \"axis\": \"" << sweep_axis_name(spec.scenario.sweep_axis)
       << "\",\n";
    os << "  \"faults\": {\"loss_rate\": " << fmt(plan.loss_rate)
       << ", \"link_loss_overrides\": " << plan.link_loss.size()
       << ", \"crash_incidents\": " << crashes
       << ", \"flap_incidents\": " << flaps
       << ", \"partition_incidents\": " << partitions
       << ", \"probe_packets\": " << spec.scenario.probe_packets << "},\n";
  }
  if (adversary) {
    const AdversarySpec& adv = spec.scenario.adversaries;
    if (!faults && !traffic)
      os << "  \"axis\": \"" << sweep_axis_name(spec.scenario.sweep_axis)
         << "\",\n";
    os << "  \"adversaries\": {\"count\": " << adv.count
       << ", \"fraction\": " << fmt(adv.fraction) << ", \"kinds\": [";
    for (std::size_t i = 0; i < adv.kinds.size(); ++i)
      os << (i ? ", " : "") << '"' << adversary_kind_name(adv.kinds[i])
         << '"';
    os << "], \"corrupt_rate\": " << fmt(adv.corrupt_rate) << "},\n";
  }
  if (dynamic) {
    const DynamicsSpec& dyn = spec.scenario.dynamics;
    os << "  \"axis\": \"" << sweep_axis_name(spec.scenario.sweep_axis)
       << "\",\n";
    os << "  \"dynamics\": {\"model\": \""
       << (dyn.model == DynamicsSpec::Model::kWaypoint ? "waypoint" : "churn")
       << "\", \"epochs\": " << dyn.epochs
       << ", \"epoch_duration\": " << fmt(dyn.epoch_duration)
       << ", \"refresh_interval\": " << dyn.refresh_interval
       << ", \"speed_min\": " << fmt(dyn.speed_min)
       << ", \"speed_max\": " << fmt(dyn.speed_max)
       << ", \"pause_epochs\": " << dyn.pause_epochs
       << ", \"link_down_rate\": " << fmt(dyn.link_down_rate)
       << ", \"link_up_rate\": " << fmt(dyn.link_up_rate) << "},\n";
  }
  os << "  \"densities\": [";
  for (std::size_t di = 0; di < result.sweep.size(); ++di) {
    const DensityStats& d = result.sweep[di];
    os << (di ? "," : "") << "\n    {\n";
    os << "      \"density\": " << fmt(d.density) << ",\n";
    os << "      \"runs\": " << d.runs << ",\n";
    os << "      \"avg_nodes\": " << fmt(d.node_count.mean()) << ",\n";
    os << "      \"protocols\": [";
    for (std::size_t pi = 0; pi < d.protocols.size(); ++pi) {
      const ProtocolStats& p = d.protocols[pi];
      os << (pi ? "," : "") << "\n        {\"name\": \"" << json_escape(p.name)
         << "\", \"delivered\": " << p.delivered
         << ", \"failed\": " << p.failed
         << ",\n         \"set_size\": " << json_stats(p.set_size)
         << ",\n         \"overhead\": " << json_stats(p.overhead)
         << ",\n         \"path_hops\": " << json_stats(p.path_hops);
      if (dynamic) {
        os << ",\n         \"delivery_ratio\": " << json_num(p.delivery_ratio())
           << ", \"stale_losses\": " << p.stale_losses
           << ",\n         \"stretch\": " << json_stats(p.stretch)
           << ",\n         \"readvertised\": " << json_stats(p.readvertised);
      }
      if (faults) {
        os << ",\n         \"delivery_ratio\": " << json_num(p.delivery_ratio())
           << ", \"no_route_drops\": " << p.no_route_losses
           << ", \"loop_drops\": " << p.loop_losses
           << ", \"medium_drops\": " << p.medium_losses
           << ",\n         \"probe_delivery\": "
           << json_distribution(p.probe_delivery);
      }
      if (traffic && p.traffic.measured()) {
        os << ",\n         \"traffic\": {"
           << "\n           \"offered\": " << p.traffic.offered
           << ", \"delivered\": " << p.traffic.delivered
           << ", \"delivery_ratio\": " << json_num(p.traffic.delivery_ratio())
           << ",\n           \"queue_drops\": " << p.traffic.queue_drops
           << ", \"no_route_drops\": " << p.traffic.no_route_drops
           << ", \"loop_drops\": " << p.traffic.loop_drops
           << ", \"medium_drops\": " << p.traffic.medium_drops
           << ",\n           \"latency\": "
           << json_distribution(p.traffic.latency)
           << ",\n           \"flow_delivery\": "
           << json_distribution(p.traffic.flow_delivery)
           << ",\n           \"flow_throughput\": "
           << json_distribution(p.traffic.flow_throughput) << "}";
      }
      if (adversary) {
        const InvariantCounters& c = p.invariants.counters;
        os << ",\n         \"invariants\": {"
           << "\n           \"total\": " << c.total()
           << ", \"forwarding_loops\": " << c.forwarding_loops
           << ", \"blackhole_absorptions\": " << c.blackhole_absorptions
           << ", \"mpr_refusals\": " << c.mpr_refusals
           << ",\n           \"ansn_regressions\": " << c.ansn_regressions
           << ", \"stale_tc_rejections\": " << c.stale_tc_rejections
           << ", \"phantom_links\": " << c.phantom_links
           << ", \"inflated_qos\": " << c.inflated_qos
           << ", \"poisoned_nodes\": " << c.poisoned_nodes
           << ",\n           \"poisoned_routes\": "
           << p.invariants.poisoned_routes
           << ",\n           \"frames_corrupted\": "
           << json_stats(p.invariants.frames_corrupted)
           << ",\n           \"frames_malformed\": "
           << json_stats(p.invariants.frames_malformed)
           << ",\n           \"time_to_first_violation\": "
           << json_stats(p.invariants.time_to_first_violation) << "}";
      }
      if (p.control.measured()) {
        os << ",\n         \"control_plane\": {"
           << "\n           \"hello_msgs\": " << json_stats(p.control.hello_msgs)
           << ",\n           \"tc_msgs\": " << json_stats(p.control.tc_msgs)
           << ",\n           \"tc_forwards\": "
           << json_stats(p.control.tc_forwards)
           << ",\n           \"duplicate_drops\": "
           << json_stats(p.control.duplicate_drops)
           << ",\n           \"control_bytes\": "
           << json_stats(p.control.control_bytes)
           << ",\n           \"convergence_time\": "
           << json_stats(p.control.convergence_time)
           << ",\n           \"unconverged_runs\": " << p.control.unconverged;
        if (faults) {
          os << ",\n           \"frames_lost\": "
             << json_stats(p.control.frames_lost)
             << ",\n           \"frames_blocked\": "
             << json_stats(p.control.frames_blocked)
             << ",\n           \"reconvergence_time\": "
             << json_stats(p.control.reconvergence_time)
             << ",\n           \"reconv_unconverged\": "
             << p.control.reconv_unconverged;
        }
        os << "}";
      }
      os << "}";
    }
    os << "\n      ]";
    if (!d.run_records.empty()) {
      os << ",\n      \"run_records\": [";
      for (std::size_t ri = 0; ri < d.run_records.size(); ++ri) {
        const RunRecord& r = d.run_records[ri];
        os << (ri ? "," : "") << "\n        {\"run\": " << r.run_index
           << ", \"nodes\": " << r.nodes << ", \"protocols\": [";
        for (std::size_t si = 0; si < r.protocols.size(); ++si) {
          const RunRecord::Protocol& rp = r.protocols[si];
          os << (si ? ", " : "") << "{\"set_size\": " << fmt(rp.set_size)
             << ", \"delivered\": " << (rp.delivered ? "true" : "false");
          if (rp.delivered || rp.probes_delivered > 0)
            os << ", \"value\": " << json_num(rp.value)
               << ", \"overhead\": " << json_num(rp.overhead)
               << ", \"hops\": " << rp.hops;
          if (spec.backend == BackendId::kPacket)
            os << ", \"convergence_time\": " << json_num(rp.convergence_time)
               << ", \"converged\": " << (rp.converged ? "true" : "false")
               << ", \"control_bytes\": " << fmt(rp.control_bytes)
               << ", \"probes_delivered\": " << rp.probes_delivered
               << ", \"probes_failed\": " << rp.probes_failed;
          if (traffic)
            os << ", \"traffic_offered\": " << rp.traffic_offered
               << ", \"traffic_delivered\": " << rp.traffic_delivered
               << ", \"traffic_latency_p95\": "
               << json_num(rp.traffic_latency_p95);
          if (adversary)
            os << ", \"invariant_violations\": " << rp.invariant_violations
               << ", \"poisoned_routes\": " << rp.poisoned_routes;
          os << "}";
        }
        os << "]}";
      }
      os << "\n      ]";
    }
    os << "\n    }";
  }
  os << "\n  ]\n}\n";
}

std::unique_ptr<ResultSink> make_result_sink(std::string_view format) {
  if (format == "table") return std::make_unique<PrettyTableSink>();
  if (format == "csv") return std::make_unique<CsvSink>();
  if (format == "json") return std::make_unique<JsonSink>();
  throw ExperimentError("unknown output format '" + std::string(format) +
                        "' (known: table csv json)");
}

}  // namespace qolsr
