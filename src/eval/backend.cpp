#include "eval/backend.hpp"

#include "eval/dynamic_runner.hpp"
#include "eval/packet_runner.hpp"

namespace qolsr {

namespace {

/// The analytic path: exact local views from the sampled graph, oracle
/// advertised topology, templated allocation-free sweeps — the engine the
/// paper's figures are reproduced with (and the byte-stability reference
/// every golden test pins).
class OracleBackend final : public EvalBackend {
 public:
  BackendId id() const override { return BackendId::kOracle; }

  std::vector<DensityStats> run(
      const ExperimentSpec& spec,
      const ResolvedProtocols& protocols) const override {
    return dispatch_metric(spec.metric, [&](auto tag) {
      using M = typename decltype(tag)::type;
      return spec.scenario.dynamics.enabled()
                 ? run_dynamic_sweep<M>(spec.scenario, protocols.ans,
                                        spec.threads)
                 : run_sweep<M>(spec.scenario, protocols.ans, spec.threads);
    });
  }
};

/// The distributed path: one discrete-event control plane per (run,
/// protocol), converged and then measured from protocol state. See
/// eval/packet_runner.hpp.
class PacketBackend final : public EvalBackend {
 public:
  BackendId id() const override { return BackendId::kPacket; }

  std::vector<DensityStats> run(
      const ExperimentSpec& spec,
      const ResolvedProtocols& protocols) const override {
    if (spec.scenario.dynamics.enabled())
      throw ExperimentError(
          "experiment '" + spec.name +
          "': the packet backend does not run mobility epochs yet "
          "(ROADMAP open item) - drop --mobility or use --backend=oracle");
    if (spec.scenario.routing_model == Scenario::RoutingModel::kAnsChain)
      throw ExperimentError(
          "experiment '" + spec.name +
          "': the packet backend's nodes route hop-by-hop on their own "
          "knowledge (the advertised-union model); --routing=chain is an "
          "oracle-only discipline");
    return dispatch_metric(spec.metric, [&](auto tag) {
      using M = typename decltype(tag)::type;
      return run_packet_sweep<M>(spec.scenario, protocols, spec.threads);
    });
  }
};

}  // namespace

const EvalBackend& backend_for(BackendId id) {
  static const OracleBackend oracle;
  static const PacketBackend packet;
  return id == BackendId::kPacket ? static_cast<const EvalBackend&>(packet)
                                  : oracle;
}

ResolvedProtocols resolve_protocols(const ExperimentSpec& spec,
                                    const SelectorRegistry& registry) {
  ResolvedProtocols protocols;
  protocols.owned.reserve(2 * spec.selectors.size());
  protocols.ans.reserve(spec.selectors.size());
  try {
    for (const std::string& name : spec.selectors) {
      protocols.owned.push_back(registry.create(name, spec.metric));
      protocols.ans.push_back(protocols.owned.back().get());
    }
    if (spec.backend == BackendId::kPacket) {
      protocols.flooding.reserve(spec.selectors.size());
      for (const std::string& name : spec.selectors) {
        protocols.owned.push_back(
            registry.create_flooding(name, spec.metric));
        protocols.flooding.push_back(protocols.owned.back().get());
      }
    }
  } catch (const std::invalid_argument& e) {
    throw ExperimentError("experiment '" + spec.name + "': " + e.what());
  }
  return protocols;
}

}  // namespace qolsr
