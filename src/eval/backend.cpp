#include "eval/backend.hpp"

#include "eval/dynamic_runner.hpp"
#include "eval/packet_runner.hpp"
#include "eval/wire_runner.hpp"

namespace qolsr {

namespace {

/// The analytic path: exact local views from the sampled graph, oracle
/// advertised topology, templated allocation-free sweeps — the engine the
/// paper's figures are reproduced with (and the byte-stability reference
/// every golden test pins).
class OracleBackend final : public EvalBackend {
 public:
  BackendId id() const override { return BackendId::kOracle; }

  std::vector<DensityStats> run(
      const ExperimentSpec& spec,
      const ResolvedProtocols& protocols) const override {
    return dispatch_metric(spec.metric, [&](auto tag) {
      using M = typename decltype(tag)::type;
      return spec.scenario.dynamics.enabled()
                 ? run_dynamic_sweep<M>(spec.scenario, protocols.ans,
                                        spec.threads)
                 : run_sweep<M>(spec.scenario, protocols.ans, spec.threads);
    });
  }
};

/// The distributed path: one discrete-event control plane per (run,
/// protocol), converged and then measured from protocol state. See
/// eval/packet_runner.hpp.
class PacketBackend final : public EvalBackend {
 public:
  BackendId id() const override { return BackendId::kPacket; }

  std::vector<DensityStats> run(
      const ExperimentSpec& spec,
      const ResolvedProtocols& protocols) const override {
    if (spec.scenario.dynamics.enabled())
      throw ExperimentError(
          "experiment '" + spec.name +
          "': the packet backend does not run mobility epochs yet "
          "(ROADMAP open item) - drop --mobility or use --backend=oracle");
    if (spec.scenario.routing_model == Scenario::RoutingModel::kAnsChain)
      throw ExperimentError(
          "experiment '" + spec.name +
          "': the packet backend's nodes route hop-by-hop on their own "
          "knowledge (the advertised-union model); --routing=chain is an "
          "oracle-only discipline");
    return dispatch_metric(spec.metric, [&](auto tag) {
      using M = typename decltype(tag)::type;
      return run_packet_sweep<M>(spec.scenario, protocols, spec.threads);
    });
  }
};

/// The multi-process path: one fleet of real qolsr_node daemons over the
/// software switch per (run, protocol), digest-verified against an
/// in-process Simulator twin. See eval/wire_runner.hpp.
class WireBackend final : public EvalBackend {
 public:
  BackendId id() const override { return BackendId::kWire; }

  std::vector<DensityStats> run(
      const ExperimentSpec& spec,
      const ResolvedProtocols& protocols) const override {
    if (spec.scenario.dynamics.enabled())
      throw ExperimentError(
          "experiment '" + spec.name +
          "': the wire backend runs static deployments only - drop "
          "--mobility or use --backend=oracle");
    if (spec.scenario.sweep_axis != Scenario::SweepAxis::kDensity)
      throw ExperimentError(
          "experiment '" + spec.name +
          "': the wire backend sweeps density only (loss/load/adversary "
          "axes live on --backend=packet)");
    if (spec.per_run || spec.scenario.record_runs)
      throw ExperimentError(
          "experiment '" + spec.name +
          "': the wire backend reports aggregates only (drop --per-run)");
    // Every node of every run is a real OS process; refuse deployments
    // whose expected fleets would fork-bomb the machine instead of timing
    // out one by one.
    DeploymentConfig field = spec.scenario.field;
    for (const double density : spec.scenario.densities) {
      field.degree = density;
      if (field.expected_nodes() > 64.0)
        throw ExperimentError(
            "experiment '" + spec.name + "': density " +
            std::to_string(density) + " expects ~" +
            std::to_string(static_cast<long>(field.expected_nodes())) +
            " nodes per deployment - every node is a real process; shrink "
            "--field (e.g. 250x250) to keep wire fleets under 64");
    }
    return dispatch_metric(spec.metric, [&](auto tag) {
      using M = typename decltype(tag)::type;
      return run_wire_sweep<M>(spec, protocols);
    });
  }
};

}  // namespace

const EvalBackend& backend_for(BackendId id) {
  static const OracleBackend oracle;
  static const PacketBackend packet;
  static const WireBackend wire;
  switch (id) {
    case BackendId::kPacket:
      return packet;
    case BackendId::kWire:
      return wire;
    case BackendId::kOracle:
      break;
  }
  return oracle;
}

ResolvedProtocols resolve_protocols(const ExperimentSpec& spec,
                                    const SelectorRegistry& registry) {
  ResolvedProtocols protocols;
  protocols.owned.reserve(2 * spec.selectors.size());
  protocols.ans.reserve(spec.selectors.size());
  try {
    for (const std::string& name : spec.selectors) {
      protocols.owned.push_back(registry.create(name, spec.metric));
      protocols.ans.push_back(protocols.owned.back().get());
    }
    // Backends that flood real packets (in-process or across processes)
    // also need each protocol's TC-flooding role; the oracle does not.
    if (spec.backend != BackendId::kOracle) {
      protocols.flooding.reserve(spec.selectors.size());
      for (const std::string& name : spec.selectors) {
        protocols.owned.push_back(
            registry.create_flooding(name, spec.metric));
        protocols.flooding.push_back(protocols.owned.back().get());
      }
    }
  } catch (const std::invalid_argument& e) {
    throw ExperimentError("experiment '" + spec.name + "': " + e.what());
  }
  return protocols;
}

}  // namespace qolsr
