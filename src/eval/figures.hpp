#pragma once

#include <cstddef>
#include <cstdint>

#include "eval/runner.hpp"
#include "util/table.hpp"

namespace qolsr {

/// Shared knobs of the figure-reproduction harness. Defaults are the
/// paper's (100 runs); benches expose --runs/--seed flags for quick passes.
struct FigureConfig {
  std::size_t runs = 100;
  std::uint64_t seed = 42;
};

/// Fig. 6 — size of the advertised set vs. density, bandwidth metric.
util::Table figure6_ans_size_bandwidth(const FigureConfig& config = {});

/// Fig. 7 — size of the advertised set vs. density, delay metric.
util::Table figure7_ans_size_delay(const FigureConfig& config = {});

/// Fig. 8 — bandwidth overhead (b*−b)/b* vs. density.
util::Table figure8_bandwidth_overhead(const FigureConfig& config = {});

/// Fig. 9 — delay overhead (d−d*)/d* vs. density.
util::Table figure9_delay_overhead(const FigureConfig& config = {});

/// Runs the three-protocol sweep underlying a bandwidth figure once and
/// returns the raw per-density stats (used by benches that print both set
/// size and overhead without recomputing).
std::vector<DensityStats> bandwidth_sweep(const FigureConfig& config);
std::vector<DensityStats> delay_sweep(const FigureConfig& config);

/// Formats a sweep as the paper's Fig. 6/7 series (mean |ANS| per node).
util::Table set_size_table(const std::vector<DensityStats>& sweep);
/// Formats a sweep as the paper's Fig. 8/9 series (mean QoS overhead).
util::Table overhead_table(const std::vector<DensityStats>& sweep);
/// Companion diagnostics: delivery counts, path lengths, node counts.
util::Table diagnostics_table(const std::vector<DensityStats>& sweep);

}  // namespace qolsr
