#pragma once

#include <cstddef>
#include <cstdint>

#include "eval/experiment.hpp"
#include "util/table.hpp"

namespace qolsr {

/// Shared knobs of the figure-reproduction harness. Defaults are the
/// paper's (100 runs); benches expose --runs/--seed/--threads flags for
/// quick deterministic passes. threads == 0 means hardware concurrency.
struct FigureConfig {
  std::size_t runs = 100;
  std::uint64_t seed = 42;
  unsigned threads = 0;
};

/// The canned ExperimentSpec behind one of the paper's Figs. 6–9: the
/// figure's metric and densities, the paper's three contenders
/// (qolsr_mpr2, topology_filtering, fnbp) in legend order, and the
/// config's runs/seed/threads. Throws ExperimentError for figures outside
/// 6–9. The figureN_* helpers below are exactly
/// `run_experiment(figure_spec(N, config))` plus table formatting —
/// anything they can compute, `qolsr_eval --figure=N` reproduces.
ExperimentSpec figure_spec(int figure, const FigureConfig& config = {});

/// "Fig. M" — the repository's canned mobility figure (the paper stops at
/// static snapshots): delivery ratio vs. node speed under random-waypoint
/// motion, all five selectors, bandwidth metric. Each sweep point fixes
/// the waypoint speed (1..20 m/s) at the paper's deployment density
/// (δ = 20); epochs model 1 s HELLO periods with a 5-epoch TC refresh lag
/// (OLSR's default TC_INTERVAL/HELLO_INTERVAL ratio), so the delivery
/// curves measure what each heuristic's advertised set is worth while it
/// is going stale. `qolsr_eval --figure=M` starts from this spec.
ExperimentSpec figure_m_spec(const FigureConfig& config = {});

/// "Fig. R" — the repository's canned robustness figure: delivery ratio
/// vs. ambient frame-loss probability (0..0.4) under the packet backend,
/// all five selectors, bandwidth metric, any-connected multi-hop pairs at
/// fixed density δ = 10. Eight data probes per run resolve the delivery
/// ratio, every failed probe is classified (blackhole / loop / medium
/// loss), and one scheduled single-node crash per run times
/// re-convergence. The loss = 0 column is byte-identical to a fault-free
/// packet sweep — the pin CI holds it to. `qolsr_eval --figure=R` starts
/// from this spec.
ExperimentSpec figure_r_spec(const FigureConfig& config = {});

/// "Fig. L" — the repository's canned load figure: traffic delivery ratio
/// and p95 latency vs. offered load under the packet backend, all five
/// selectors, bandwidth metric, any-connected pairs at fixed density
/// δ = 10. Each sweep point multiplies a 16-flow Poisson workload by the
/// load value; links drain at a capacity proportional to their bandwidth
/// QoS, so the selectors that advertise (and route over) high-bandwidth
/// links keep delivering while the others saturate — the curves separate
/// as load grows. `qolsr_eval --figure=L` starts from this spec.
ExperimentSpec figure_l_spec(const FigureConfig& config = {});

/// "Fig. B" — the repository's canned Byzantine-robustness figure:
/// delivery ratio and poisoned-route count vs. adversary roster fraction
/// (0..0.3) under the packet backend, all five selectors, bandwidth
/// metric, any-connected multi-hop pairs at fixed density δ = 10. Each
/// sweep point subverts that fraction of the nodes (blackhole and liar
/// roles round-robin), the runtime invariant monitor counts the protocol
/// violations as they form, and eight data probes per run resolve how much
/// delivery each selector's relay choices surrender to the roster. The
/// fraction = 0 column is byte-identical to an honest packet sweep — the
/// pin CI holds it to. `qolsr_eval --figure=B` starts from this spec.
ExperimentSpec figure_b_spec(const FigureConfig& config = {});

/// Pipe-separated list of the valid --figure names ("6|7|8|9|M|R|L|B"),
/// for error messages and usage text.
std::string figure_names();

/// The one figure table every consumer shares: resolves a --figure value —
/// a paper figure number or a canned letter figure, letters
/// case-insensitive — to its spec. Throws ExperimentError naming the valid
/// figures on an unknown value; adding a figure is one row in the table.
ExperimentSpec figure_by_name(std::string_view name,
                              const FigureConfig& config = {});

/// Fig. 6 — size of the advertised set vs. density, bandwidth metric.
util::Table figure6_ans_size_bandwidth(const FigureConfig& config = {});

/// Fig. 7 — size of the advertised set vs. density, delay metric.
util::Table figure7_ans_size_delay(const FigureConfig& config = {});

/// Fig. 8 — bandwidth overhead (b*−b)/b* vs. density.
util::Table figure8_bandwidth_overhead(const FigureConfig& config = {});

/// Fig. 9 — delay overhead (d−d*)/d* vs. density.
util::Table figure9_delay_overhead(const FigureConfig& config = {});

/// Runs the three-protocol sweep underlying a bandwidth figure once and
/// returns the raw per-density stats (used by benches that print both set
/// size and overhead without recomputing).
std::vector<DensityStats> bandwidth_sweep(const FigureConfig& config);
std::vector<DensityStats> delay_sweep(const FigureConfig& config);

/// Formats a sweep as the paper's Fig. 6/7 series (mean |ANS| per node).
/// `axis` labels the x column ("density" for Figs. 6-9, "speed" for
/// dynamics speed sweeps — see sweep_axis_name).
util::Table set_size_table(const std::vector<DensityStats>& sweep,
                           const std::string& axis = "density");
/// Formats a sweep as the paper's Fig. 8/9 series (mean QoS overhead).
util::Table overhead_table(const std::vector<DensityStats>& sweep,
                           const std::string& axis = "density");
/// Companion diagnostics: delivery counts, path lengths, node counts.
util::Table diagnostics_table(const std::vector<DensityStats>& sweep,
                              const std::string& axis = "density");
/// The dynamics (epoch-loop) series: delivery ratio, hop stretch, and TC
/// re-advertisements per refresh (the CSV/JSON sinks additionally split
/// failures into stale-link drops vs. the rest). Meaningful only for
/// sweeps run with a mobility model.
util::Table dynamics_table(const std::vector<DensityStats>& sweep,
                           const std::string& axis = "speed");
/// The packet-backend control-plane series: mean TC messages (originated +
/// MPR forwards), broadcast control bytes, and measured convergence time
/// per run. Meaningful only for sweeps run with --backend=packet (the
/// oracle leaves ControlPlaneStats empty).
util::Table control_plane_table(const std::vector<DensityStats>& sweep,
                                const std::string& axis = "density");
/// The fault-engine degradation series: delivery ratio, blackhole (no
/// route) drop count, and mean re-convergence seconds after injected
/// incidents. Meaningful only for packet-backend sweeps with an active
/// FaultPlan (or the loss axis).
util::Table degradation_table(const std::vector<DensityStats>& sweep,
                              const std::string& axis = "loss");
/// The traffic-workload series: flow delivery ratio, queue-drop count,
/// and p95 end-to-end latency (ms) under load. Meaningful only for
/// packet-backend sweeps with an active TrafficSpec (or the load axis).
util::Table traffic_table(const std::vector<DensityStats>& sweep,
                          const std::string& axis = "load");
/// The adversary-engine series: delivery ratio, invariant violations
/// caught by the runtime monitor, and poisoned-route count per sweep
/// point. Meaningful only for packet-backend sweeps with an active
/// AdversarySpec (or the adversary axis).
util::Table invariants_table(const std::vector<DensityStats>& sweep,
                             const std::string& axis = "adversary");

}  // namespace qolsr
