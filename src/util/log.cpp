#include "util/log.hpp"

#include <atomic>

namespace qolsr::util {

namespace {
std::atomic<LogLevel> g_threshold{LogLevel::kWarn};

std::string_view level_name(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarn:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kOff:
      return "OFF";
  }
  return "?";
}
}  // namespace

LogLevel log_threshold() { return g_threshold.load(std::memory_order_relaxed); }

void set_log_threshold(LogLevel level) {
  g_threshold.store(level, std::memory_order_relaxed);
}

namespace detail {
void emit(LogLevel level, std::string_view message) {
  if (level < log_threshold()) return;
  std::clog << '[' << level_name(level) << "] " << message << '\n';
}
}  // namespace detail

}  // namespace qolsr::util
