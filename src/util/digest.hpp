#pragma once

#include <cstdint>

namespace qolsr::util {

/// Seed of the state-digest fold chains (FNV-1a offset basis).
inline constexpr std::uint64_t kDigestSeed = 0xcbf29ce484222325ULL;

/// Folds one value into a running digest (boost::hash_combine-style mix).
/// Used for the cheap converged-state fingerprints the simulator compares
/// between steps: equal protocol state must fold to equal digests, and the
/// mix spreads single-field changes across the whole word so a quiescence
/// check can compare one integer instead of whole tables.
inline std::uint64_t digest_mix(std::uint64_t h, std::uint64_t v) {
  return h ^ (v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2));
}

}  // namespace qolsr::util
