#include "util/rng.hpp"

#include <cmath>

namespace qolsr::util {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t x = seed;
  for (auto& word : s_) word = splitmix64(x);
  // A state of all zeros is the one fixed point of xoshiro; SplitMix64
  // cannot produce four zero outputs in a row, but be defensive anyway.
  if (s_[0] == 0 && s_[1] == 0 && s_[2] == 0 && s_[3] == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::uniform_int(std::uint64_t n) {
  // Lemire 2019: multiply-shift with rejection for exact uniformity.
  __uint128_t m = static_cast<__uint128_t>(next()) * n;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < n) {
    const std::uint64_t threshold = (0 - n) % n;
    while (lo < threshold) {
      m = static_cast<__uint128_t>(next()) * n;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::uint64_t Rng::poisson(double lambda) {
  if (lambda <= 0) return 0;
  if (lambda < 30.0) {
    // Knuth: count exponential arrivals until the product drops below e^-λ.
    const double limit = std::exp(-lambda);
    std::uint64_t k = 0;
    double product = uniform01();
    while (product > limit) {
      ++k;
      product *= uniform01();
    }
    return k;
  }
  // Hörmann's PTRS transformed rejection (valid for lambda >= 10).
  const double b = 0.931 + 2.53 * std::sqrt(lambda);
  const double a = -0.059 + 0.02483 * b;
  const double inv_alpha = 1.1239 + 1.1328 / (b - 3.4);
  const double v_r = 0.9277 - 3.6224 / (b - 2.0);
  for (;;) {
    double u = uniform01() - 0.5;
    const double v = uniform01();
    const double us = 0.5 - std::fabs(u);
    const double k = std::floor((2.0 * a / us + b) * u + lambda + 0.43);
    if (us >= 0.07 && v <= v_r) return static_cast<std::uint64_t>(k);
    if (k < 0 || (us < 0.013 && v > us)) continue;
    if (std::log(v * inv_alpha / (a / (us * us) + b)) <=
        k * std::log(lambda) - lambda - std::lgamma(k + 1.0)) {
      return static_cast<std::uint64_t>(k);
    }
  }
}

double Rng::normal() {
  // Box–Muller; draw until u1 is nonzero so the log is finite.
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * 3.14159265358979323846 * u2);
}

}  // namespace qolsr::util
