#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace qolsr::util {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto n1 = static_cast<double>(n_);
  const auto n2 = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = n1 + n2;
  mean_ += delta * n2 / total;
  m2_ += other.m2_ + delta * delta * n1 * n2 / total;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  n_ += other.n_;
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::sem() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (q <= 0.0) return sorted.front();
  if (q >= 1.0) return sorted.back();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto idx = static_cast<std::size_t>(pos);
  const double frac = pos - static_cast<double>(idx);
  if (idx + 1 >= sorted.size()) return sorted.back();
  return sorted[idx] * (1.0 - frac) + sorted[idx + 1] * frac;
}

double quantile(std::vector<double> samples, double q) {
  std::sort(samples.begin(), samples.end());
  return quantile_sorted(samples, q);
}

std::vector<double> DistributionAccumulator::sorted() const {
  std::vector<double> out = samples_;
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<std::size_t> histogram_sorted(const std::vector<double>& sorted,
                                          double lo, double hi,
                                          std::size_t buckets) {
  if (buckets == 0) buckets = 1;
  std::vector<std::size_t> counts(buckets, 0);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (const double x : sorted) {
    std::size_t bin = 0;
    if (width > 0.0 && x > lo) {
      bin = static_cast<std::size_t>((x - lo) / width);
      if (bin >= buckets) bin = buckets - 1;
    }
    counts[bin] += 1;
  }
  return counts;
}

}  // namespace qolsr::util
