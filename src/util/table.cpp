#include "util/table.hpp"

#include <algorithm>
#include <cassert>
#include <ostream>
#include <sstream>

namespace qolsr::util {

std::string format_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

Table::Table(std::vector<std::string> header) : header_(std::move(header)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() == header_.size());
  rows_.push_back(std::move(cells));
}

void Table::add_row(double key, const std::vector<double>& values,
                    int precision) {
  std::vector<std::string> cells;
  cells.reserve(values.size() + 1);
  cells.push_back(format_double(key, 0));
  for (double v : values) cells.push_back(format_double(v, precision));
  add_row(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    widths[c] = header_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row, char pad) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ' ' << '|' << ' ';
      const std::size_t padding = widths[c] - row[c].size();
      os << std::string(padding, pad == ' ' ? ' ' : '-') << row[c];
    }
    os << '\n';
  };
  emit_row(header_, ' ');
  std::vector<std::string> rule;
  rule.reserve(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c)
    rule.push_back(std::string(widths[c], '-'));
  emit_row(rule, '-');
  for (const auto& row : rows_) emit_row(row, ' ');
  return os.str();
}

void Table::print(std::ostream& os) const { os << to_string(); }

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c > 0) os << ',';
      os << row[c];
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace qolsr::util
