#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace qolsr::util {

/// Deterministic pseudo-random number generator (xoshiro256**).
///
/// All experiments in this repository are seeded, so a run is reproducible
/// bit-for-bit across platforms. The engine satisfies the
/// UniformRandomBitGenerator requirements and can be used with <random>
/// distributions, but the helpers below are preferred because libstdc++'s
/// distributions are not guaranteed to be portable across versions.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a 64-bit seed via SplitMix64, as
  /// recommended by the xoshiro authors (avoids correlated low-entropy
  /// states).
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  void reseed(std::uint64_t seed);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform01() {
    // 53 high bits -> double mantissa; standard xoshiro recipe.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform01(); }

  /// Uniform integer in [0, n), n > 0. Uses Lemire's multiply-shift with
  /// rejection to avoid modulo bias.
  std::uint64_t uniform_int(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    uniform_int(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Poisson-distributed integer with mean `lambda`.
  ///
  /// Knuth's product method for small lambda; for large lambda, the PTRS
  /// transformed-rejection method of Hörmann (1993), which is O(1) and
  /// deterministic given the stream.
  std::uint64_t poisson(double lambda);

  /// Standard normal via Box–Muller (deterministic, no cached spare).
  double normal();

  /// Splits off an independent child stream. The child is seeded from this
  /// stream's output, so sub-experiments can be made order-independent.
  Rng split() { return Rng(next() ^ 0xd1b54a32d192ed03ULL); }

 private:
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace qolsr::util
