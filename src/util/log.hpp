#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace qolsr::util {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide log threshold. Messages below it are dropped. Defaults to
/// kWarn so library users are not spammed; the simulator trace raises it
/// explicitly when asked to.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

namespace detail {
void emit(LogLevel level, std::string_view message);
}

/// Minimal streaming logger: `LOG(kInfo) << "converged at " << t;`
/// Evaluates the stream expression only when the level is enabled.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { detail::emit(level_, os_.str()); }
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;

  template <typename T>
  LogLine& operator<<(const T& value) {
    os_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};

}  // namespace qolsr::util

#define QOLSR_LOG(level)                                          \
  if (::qolsr::util::LogLevel::level < ::qolsr::util::log_threshold()) { \
  } else                                                          \
    ::qolsr::util::LogLine(::qolsr::util::LogLevel::level)
