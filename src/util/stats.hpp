#pragma once

#include <cstddef>
#include <vector>

namespace qolsr::util {

/// Streaming accumulator for mean / variance / extrema (Welford's method).
///
/// Used throughout the evaluation harness to aggregate per-run measurements
/// without storing every sample.
class RunningStats {
 public:
  void add(double x);
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  double variance() const;
  double stddev() const;
  /// Standard error of the mean.
  double sem() const;
  /// Half-width of the ~95% normal confidence interval for the mean.
  double ci95_halfwidth() const { return 1.959963984540054 * sem(); }
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact quantile of a sample (linear interpolation between order
/// statistics). `q` in [0,1]. The input is copied; for repeated quantiles
/// sort once and use `quantile_sorted`.
double quantile(std::vector<double> samples, double q);

/// Quantile of an already ascending-sorted sample.
double quantile_sorted(const std::vector<double>& sorted, double q);

/// Sample-retaining accumulator for distribution-shaped outputs (latency,
/// per-flow delivery, throughput): where RunningStats keeps only moments,
/// this keeps every sample so the sinks can report exact quantiles and
/// histogram buckets. Mergeable across worker threads; every derived
/// statistic is computed from the ascending-sorted samples, so the result
/// is invariant to merge order — and therefore to the thread count.
class DistributionAccumulator {
 public:
  void add(double x) { samples_.push_back(x); }
  void merge(const DistributionAccumulator& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  std::size_t count() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const std::vector<double>& samples() const { return samples_; }

  /// Ascending-sorted copy of the samples — the canonical order every
  /// emitted statistic (quantiles, mean, histogram) is derived from.
  std::vector<double> sorted() const;

 private:
  std::vector<double> samples_;
};

/// Counts an ascending-sorted sample into `buckets` equal-width bins over
/// [lo, hi); values below lo land in the first bin, values >= hi in the
/// last. Degenerate ranges (hi <= lo) put everything in the first bin.
std::vector<std::size_t> histogram_sorted(const std::vector<double>& sorted,
                                          double lo, double hi,
                                          std::size_t buckets);

}  // namespace qolsr::util
