#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace qolsr::util {

/// Fixed-width ASCII table printer used by the figure-reproduction benches.
///
/// Collects rows of cells, then renders with every column padded to the
/// widest cell, e.g.:
///
///   density | qolsr | topo_filter | fnbp
///   ------- | ----- | ----------- | ----
///        10 |  5.81 |        3.12 | 2.40
class Table {
 public:
  explicit Table(std::vector<std::string> header);

  /// Appends a row; must have exactly as many cells as the header.
  void add_row(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  void add_row(double key, const std::vector<double>& values,
               int precision = 4);

  std::string to_string() const;
  void print(std::ostream& os) const;

  /// Renders as RFC-4180-ish CSV (no quoting needed for our numeric cells).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (no trailing-zero stripping; keeps
/// table columns aligned).
std::string format_double(double v, int precision);

}  // namespace qolsr::util
