#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/link_event.hpp"
#include "graph/local_view.hpp"
#include "olsr/selection_workspace.hpp"
#include "olsr/selector.hpp"

namespace qolsr {

/// Epoch-stamped node set for the incremental selection maintenance: O(1)
/// mark/test, O(marked) iteration, zero clearing cost between epochs. One
/// instance per worker thread, reused across epochs and runs.
class DirtyNodeTracker {
 public:
  /// Starts a fresh (empty) epoch over `n` nodes.
  void begin_epoch(std::size_t n) {
    if (stamp_.size() < n) stamp_.resize(n, 0);
    if (++epoch_ == 0) {
      std::fill(stamp_.begin(), stamp_.end(), 0);
      epoch_ = 1;
    }
    nodes_.clear();
  }

  void mark(NodeId v) {
    if (stamp_[v] == epoch_) return;
    stamp_[v] = epoch_;
    nodes_.push_back(v);
  }

  bool contains(NodeId v) const {
    return v < stamp_.size() && stamp_[v] == epoch_;
  }

  /// Marked nodes, ascending (sorted on access; marking happens in event
  /// order, re-selection wants a reproducible sweep order).
  std::span<const NodeId> sorted_nodes() {
    std::sort(nodes_.begin(), nodes_.end());
    return nodes_;
  }

 private:
  std::vector<std::uint32_t> stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<NodeId> nodes_;
};

/// Marks every node whose 2-hop view G_w (and hence, possibly, its
/// advertised set) changed under this epoch's link delta. A link (a,b)
/// belongs to G_w exactly when one of its endpoints is w or a 1-hop
/// neighbor of w, so the dirty set of one event is {a, b} ∪ N(a) ∪ N(b);
/// `after` is the post-delta graph — a node adjacent to a or b only
/// *before* the epoch necessarily lost that adjacency through an event of
/// its own and is marked as that event's endpoint. Everyone else's view is
/// bit-identical, which is what lets the evaluation re-run selection for
/// the dirty nodes only (the incremental-vs-rebuild equivalence test pins
/// this). Call `dirty.begin_epoch` first; events of one epoch accumulate.
void collect_dirty_nodes(const Graph& after, std::span<const LinkEvent> events,
                         DirtyNodeTracker& dirty);

/// Re-runs every selector on exactly the dirty nodes, patching the
/// per-selector ANS table `ans` in place (`ans[si][u]` keeps its capacity;
/// clean nodes are not touched). Each dirty node's view is built once into
/// `view` and shared by all selectors — the same pipeline shape as the
/// static sweep's full pass, restricted to the dirty set.
void refresh_dirty_selection(const Graph& graph,
                             const std::vector<const AnsSelector*>& selectors,
                             DirtyNodeTracker& dirty,
                             LocalViewBuilder& view_builder, LocalView& view,
                             SelectionWorkspace& selection,
                             std::vector<std::vector<std::vector<NodeId>>>& ans);

/// Number of nodes whose advertised set differs between two ANS tables of
/// the same shape — the TC re-advertisement count a refresh would trigger
/// (each changed node floods one updated TC message).
std::size_t count_changed_ans(const std::vector<std::vector<NodeId>>& now,
                              const std::vector<std::vector<NodeId>>& before);

}  // namespace qolsr
