#pragma once

#include <vector>

#include "graph/local_view.hpp"
#include "graph/node_id.hpp"
#include "olsr/selection_workspace.hpp"

namespace qolsr {

/// RFC 3626 greedy Multi-Point Relay selection (the original OLSR
/// heuristic, QoS-blind). Returns the MPR set of the view's origin as
/// ascending global ids.
///
/// Two-phase greedy (paper §II):
///   1. add every 1-hop neighbor that is the *only* cover of some 2-hop
///      neighbor;
///   2. while 2-hop neighbors remain uncovered, add the neighbor covering
///      the most of them (ties: larger total 2-hop reachability, then
///      smaller id).
///
/// The produced set covers all of N²(u) and is within log n of optimal
/// (Qayyum et al.). In FNBP and topology filtering this set keeps its
/// original flooding role while a separate ANS is advertised for routing.
std::vector<NodeId> select_mpr_rfc3626(const LocalView& view);

/// Workspace form: identical result, scratch from `ws`, set written into
/// `out` (cleared first).
void select_mpr_rfc3626(const LocalView& view, SelectionWorkspace& ws,
                        std::vector<NodeId>& out);

/// True when every 2-hop neighbor of the view's origin is adjacent to at
/// least one member of `mpr_set` (global ids). Property checked by tests
/// for every selection heuristic.
bool covers_two_hop(const LocalView& view, const std::vector<NodeId>& mpr_set);

}  // namespace qolsr
