#include "olsr/selector_registry.hpp"

#include <stdexcept>

#include "core/fnbp.hpp"

namespace qolsr {

void SelectorRegistry::add(std::string name, Factory factory,
                           Factory flooding_factory) {
  if (contains(name))
    throw std::invalid_argument("SelectorRegistry: duplicate selector name '" +
                                name + "'");
  entries_.push_back(
      {std::move(name), std::move(factory), std::move(flooding_factory)});
}

bool SelectorRegistry::contains(std::string_view name) const {
  return find(name) != nullptr;
}

const SelectorRegistry::Entry* SelectorRegistry::find(
    std::string_view name) const {
  for (const Entry& entry : entries_)
    if (entry.name == name) return &entry;
  return nullptr;
}

void SelectorRegistry::throw_unknown(std::string_view name) const {
  std::string message = "unknown selector '" + std::string(name) + "' (known:";
  for (const Entry& entry : entries_) message += " " + entry.name;
  message += ")";
  throw std::invalid_argument(message);
}

std::unique_ptr<AnsSelector> SelectorRegistry::create(std::string_view name,
                                                      MetricId metric) const {
  const Entry* entry = find(name);
  if (entry == nullptr) throw_unknown(name);
  return entry->factory(metric);
}

std::unique_ptr<AnsSelector> SelectorRegistry::create_flooding(
    std::string_view name, MetricId metric) const {
  const Entry* entry = find(name);
  if (entry == nullptr) throw_unknown(name);
  if (entry->flooding_factory) return entry->flooding_factory(metric);
  // Split designs advertise a filtered set but flood with plain RFC MPRs.
  return std::make_unique<Rfc3626Selector>();
}

std::vector<std::string> SelectorRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const Entry& entry : entries_) result.push_back(entry.name);
  return result;
}

const SelectorRegistry& SelectorRegistry::builtin() {
  static const SelectorRegistry registry = [] {
    SelectorRegistry r;
    const auto rfc3626 = [](MetricId) -> std::unique_ptr<AnsSelector> {
      // RFC 3626 MPR coverage is metric-blind; one type serves all metrics.
      return std::make_unique<Rfc3626Selector>();
    };
    const auto qolsr1 = [](MetricId metric) {
      return dispatch_metric(metric,
                             [](auto tag) -> std::unique_ptr<AnsSelector> {
        using M = typename decltype(tag)::type;
        return std::make_unique<QolsrSelector<M>>(QolsrVariant::kMpr1);
      });
    };
    const auto qolsr2 = [](MetricId metric) {
      return dispatch_metric(metric,
                             [](auto tag) -> std::unique_ptr<AnsSelector> {
        using M = typename decltype(tag)::type;
        return std::make_unique<QolsrSelector<M>>(QolsrVariant::kMpr2);
      });
    };
    // OLSR and QOLSR flood on the very set they advertise; the split QANS
    // designs (default flooding factory) keep RFC MPR flooding.
    r.add("olsr_mpr", rfc3626, rfc3626);
    r.add("qolsr_mpr1", qolsr1, qolsr1);
    r.add("qolsr_mpr2", qolsr2, qolsr2);
    r.add("topology_filtering", [](MetricId metric) {
      return dispatch_metric(metric,
                             [](auto tag) -> std::unique_ptr<AnsSelector> {
        using M = typename decltype(tag)::type;
        return std::make_unique<TopologyFilteringSelector<M>>();
      });
    });
    r.add("fnbp", [](MetricId metric) {
      return dispatch_metric(metric,
                             [](auto tag) -> std::unique_ptr<AnsSelector> {
        using M = typename decltype(tag)::type;
        return std::make_unique<FnbpSelector<M>>();
      });
    });
    return r;
  }();
  return registry;
}

}  // namespace qolsr
