#include "olsr/selector_registry.hpp"

#include <stdexcept>

#include "core/fnbp.hpp"

namespace qolsr {

void SelectorRegistry::add(std::string name, Factory factory) {
  if (contains(name))
    throw std::invalid_argument("SelectorRegistry: duplicate selector name '" +
                                name + "'");
  entries_.emplace_back(std::move(name), std::move(factory));
}

bool SelectorRegistry::contains(std::string_view name) const {
  for (const auto& [key, factory] : entries_)
    if (key == name) return true;
  return false;
}

std::unique_ptr<AnsSelector> SelectorRegistry::create(std::string_view name,
                                                      MetricId metric) const {
  for (const auto& [key, factory] : entries_)
    if (key == name) return factory(metric);
  std::string message = "unknown selector '" + std::string(name) + "' (known:";
  for (const auto& [key, factory] : entries_) message += " " + key;
  message += ")";
  throw std::invalid_argument(message);
}

std::vector<std::string> SelectorRegistry::names() const {
  std::vector<std::string> result;
  result.reserve(entries_.size());
  for (const auto& [key, factory] : entries_) result.push_back(key);
  return result;
}

const SelectorRegistry& SelectorRegistry::builtin() {
  static const SelectorRegistry registry = [] {
    SelectorRegistry r;
    r.add("olsr_mpr", [](MetricId) -> std::unique_ptr<AnsSelector> {
      // RFC 3626 MPR coverage is metric-blind; one type serves all metrics.
      return std::make_unique<Rfc3626Selector>();
    });
    r.add("qolsr_mpr1", [](MetricId metric) {
      return dispatch_metric(metric, [](auto tag) -> std::unique_ptr<AnsSelector> {
        using M = typename decltype(tag)::type;
        return std::make_unique<QolsrSelector<M>>(QolsrVariant::kMpr1);
      });
    });
    r.add("qolsr_mpr2", [](MetricId metric) {
      return dispatch_metric(metric, [](auto tag) -> std::unique_ptr<AnsSelector> {
        using M = typename decltype(tag)::type;
        return std::make_unique<QolsrSelector<M>>(QolsrVariant::kMpr2);
      });
    });
    r.add("topology_filtering", [](MetricId metric) {
      return dispatch_metric(metric, [](auto tag) -> std::unique_ptr<AnsSelector> {
        using M = typename decltype(tag)::type;
        return std::make_unique<TopologyFilteringSelector<M>>();
      });
    });
    r.add("fnbp", [](MetricId metric) {
      return dispatch_metric(metric, [](auto tag) -> std::unique_ptr<AnsSelector> {
        using M = typename decltype(tag)::type;
        return std::make_unique<FnbpSelector<M>>();
      });
    });
    return r;
  }();
  return registry;
}

}  // namespace qolsr
