#include "olsr/mpr.hpp"

#include <algorithm>
#include <cstdint>

namespace qolsr {

std::vector<NodeId> select_mpr_rfc3626(const LocalView& view) {
  thread_local SelectionWorkspace ws;
  std::vector<NodeId> result;
  select_mpr_rfc3626(view, ws, result);
  return result;
}

void select_mpr_rfc3626(const LocalView& view, SelectionWorkspace& ws,
                        std::vector<NodeId>& out) {
  const auto n = static_cast<std::uint32_t>(view.size());
  ws.covered.assign(n, 0);
  ws.in_ans.assign(n, 0);
  auto& covered = ws.covered;
  auto& selected = ws.in_ans;
  std::size_t uncovered_count = view.two_hop().size();

  // Coverage lists per neighbor (the view edges from w into the 2-hop
  // zone), and per-2-hop cover counts for phase 1.
  ws.reset_covers(n);
  ws.cover_count.assign(n, 0);
  auto& covers = ws.covers;
  auto& cover_count = ws.cover_count;
  for (std::uint32_t w : view.one_hop()) {
    for (const LocalView::LocalEdge& e : view.neighbors(w))
      if (view.is_two_hop(e.to)) covers[w].push_back(e.to);
    for (std::uint32_t v : covers[w]) ++cover_count[v];
  }

  auto select = [&](std::uint32_t w) {
    selected[w] = 1;
    for (std::uint32_t v : covers[w]) {
      if (!covered[v]) {
        covered[v] = 1;
        --uncovered_count;
      }
    }
  };

  // Phase 1: sole covers are forced.
  for (std::uint32_t w : view.one_hop()) {
    const bool sole = std::any_of(
        covers[w].begin(), covers[w].end(),
        [&](std::uint32_t v) { return cover_count[v] == 1; });
    if (sole) select(w);
  }

  // Phase 2: greedy max-coverage.
  while (uncovered_count > 0) {
    std::uint32_t best = kInvalidNode;
    std::size_t best_gain = 0;
    for (std::uint32_t w : view.one_hop()) {
      if (selected[w]) continue;
      const std::size_t gain = static_cast<std::size_t>(
          std::count_if(covers[w].begin(), covers[w].end(),
                        [&](std::uint32_t v) { return !covered[v]; }));
      if (gain == 0) continue;
      if (best == kInvalidNode || gain > best_gain ||
          (gain == best_gain &&
           (covers[w].size() > covers[best].size() ||
            (covers[w].size() == covers[best].size() &&
             view.global_id(w) < view.global_id(best))))) {
        best = w;
        best_gain = gain;
      }
    }
    if (best == kInvalidNode) break;  // residual 2-hop nodes are uncoverable
    select(best);
  }

  out.clear();
  for (std::uint32_t w : view.one_hop())
    if (selected[w]) out.push_back(view.global_id(w));
  std::sort(out.begin(), out.end());
}

bool covers_two_hop(const LocalView& view,
                    const std::vector<NodeId>& mpr_set) {
  std::vector<bool> is_mpr(view.size(), false);
  for (NodeId id : mpr_set) {
    const std::uint32_t local = view.local_id(id);
    if (local != kInvalidNode) is_mpr[local] = true;
  }
  for (std::uint32_t v : view.two_hop()) {
    const bool covered = std::any_of(
        view.neighbors(v).begin(), view.neighbors(v).end(),
        [&](const LocalView::LocalEdge& e) {
          return view.is_one_hop(e.to) && is_mpr[e.to];
        });
    if (!covered) return false;
  }
  return true;
}

}  // namespace qolsr
