#include "olsr/incremental.hpp"

namespace qolsr {

void collect_dirty_nodes(const Graph& after, std::span<const LinkEvent> events,
                         DirtyNodeTracker& dirty) {
  for (const LinkEvent& event : events) {
    dirty.mark(event.a);
    dirty.mark(event.b);
    for (const Edge& e : after.neighbors(event.a)) dirty.mark(e.to);
    for (const Edge& e : after.neighbors(event.b)) dirty.mark(e.to);
  }
}

void refresh_dirty_selection(
    const Graph& graph, const std::vector<const AnsSelector*>& selectors,
    DirtyNodeTracker& dirty, LocalViewBuilder& view_builder, LocalView& view,
    SelectionWorkspace& selection,
    std::vector<std::vector<std::vector<NodeId>>>& ans) {
  for (const NodeId u : dirty.sorted_nodes()) {
    view_builder.build(graph, u, view);
    for (std::size_t si = 0; si < selectors.size(); ++si)
      selectors[si]->select_into(view, selection, ans[si][u]);
  }
}

std::size_t count_changed_ans(const std::vector<std::vector<NodeId>>& now,
                              const std::vector<std::vector<NodeId>>& before) {
  std::size_t changed = 0;
  for (std::size_t u = 0; u < now.size(); ++u)
    changed += now[u] != before[u] ? 1 : 0;
  return changed;
}

}  // namespace qolsr
