#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "graph/local_view.hpp"
#include "olsr/mpr.hpp"
#include "olsr/qolsr_mpr.hpp"
#include "olsr/selection_workspace.hpp"
#include "olsr/topology_filtering.hpp"

namespace qolsr {

/// Uniform interface over the neighbor-selection heuristics the paper
/// compares (original OLSR MPR, QOLSR MPR-1/MPR-2, topology filtering and
/// — in core/fnbp.hpp — FNBP). The evaluation harness and the protocol
/// stack are written against this interface so every heuristic runs in the
/// exact same pipeline.
class AnsSelector {
 public:
  virtual ~AnsSelector() = default;

  virtual std::string_view name() const = 0;

  /// Computes the advertised set of the view's origin. Returns ascending
  /// global node ids, all members of N(origin).
  virtual std::vector<NodeId> select(const LocalView& view) const = 0;

  /// Workspace form used by the eval hot loop: identical result, but all
  /// scratch comes from `ws` and the set is written into `out` (cleared
  /// first). The default forwards to `select`; heuristics with a
  /// workspace-aware implementation override it to run allocation-free.
  virtual void select_into(const LocalView& view, SelectionWorkspace& ws,
                           std::vector<NodeId>& out) const {
    (void)ws;
    out = select(view);
  }

  /// Whether routes over this protocol's advertised state are computed
  /// QoS-first. Original OLSR and QOLSR keep hop-count-primary routing
  /// (QoS only as tie-break; paper §II), the QANS designs route QoS-first.
  virtual bool qos_first_routing() const { return true; }
};

/// Original OLSR (RFC 3626) MPR set used directly as the advertised set.
class Rfc3626Selector final : public AnsSelector {
 public:
  std::string_view name() const override { return "olsr_mpr"; }
  std::vector<NodeId> select(const LocalView& view) const override {
    return select_mpr_rfc3626(view);
  }
  void select_into(const LocalView& view, SelectionWorkspace& ws,
                   std::vector<NodeId>& out) const override {
    select_mpr_rfc3626(view, ws, out);
  }
  bool qos_first_routing() const override { return false; }
};

/// QOLSR (Badis & Agha): the QoS MPR set doubles as the advertised set.
template <Metric M>
class QolsrSelector final : public AnsSelector {
 public:
  explicit QolsrSelector(QolsrVariant variant = QolsrVariant::kMpr2)
      : variant_(variant),
        name_(std::string("qolsr_mpr") +
              (variant == QolsrVariant::kMpr1 ? "1" : "2") + "_" +
              std::string(M::name())) {}

  std::string_view name() const override { return name_; }
  std::vector<NodeId> select(const LocalView& view) const override {
    return select_qolsr_mpr<M>(view, variant_);
  }
  void select_into(const LocalView& view, SelectionWorkspace& ws,
                   std::vector<NodeId>& out) const override {
    select_qolsr_mpr<M>(view, variant_, ws, out);
  }
  bool qos_first_routing() const override { return false; }

 private:
  QolsrVariant variant_;
  std::string name_;
};

/// Topology-filtering QANS (Moraru & Simplot-Ryl).
template <Metric M>
class TopologyFilteringSelector final : public AnsSelector {
 public:
  TopologyFilteringSelector()
      : name_(std::string("topology_filtering_") + std::string(M::name())) {}

  std::string_view name() const override { return name_; }
  std::vector<NodeId> select(const LocalView& view) const override {
    return select_topology_filtering_ans<M>(view);
  }
  void select_into(const LocalView& view, SelectionWorkspace& ws,
                   std::vector<NodeId>& out) const override {
    select_topology_filtering_ans<M>(view, ws, out);
  }

 private:
  std::string name_;
};

}  // namespace qolsr
