#pragma once

#include <algorithm>
#include <vector>

#include "graph/local_view.hpp"
#include "graph/rng_reduction.hpp"
#include "olsr/selection_workspace.hpp"
#include "path/first_hops.hpp"

namespace qolsr {

/// Topology-filtering QANS selection (Moraru & Simplot-Ryl, WONS 2006), the
/// paper's second baseline.
///
/// The node first prunes its view with the QoS Relative-Neighborhood-Graph
/// reduction, then advertises, for every 2-hop neighbor, *all* first nodes
/// of the best QoS paths in the reduced view — and likewise for a 1-hop
/// neighbor whose (possibly filtered) direct link is no longer a best path.
/// Selecting every tied first node is precisely the drawback the paper
/// calls out ("they will all be selected as advertised neighbors"), which
/// FNBP removes.
///
/// Returns ascending global ids in `out` (cleared first); the reduced view,
/// the fP table and the selection flags all come from `ws`.
template <Metric M>
void select_topology_filtering_ans(const LocalView& view,
                                   SelectionWorkspace& ws,
                                   std::vector<NodeId>& out) {
  rng_reduce<M>(view, ws.reduced_view, ws.rng_witness);
  const LocalView& reduced = ws.reduced_view;
  compute_first_hops<M>(reduced, ws.dijkstra, ws.first_hops);
  const FirstHopTable& table = ws.first_hops;

  ws.in_ans.assign(view.size(), 0);
  auto& in_ans = ws.in_ans;
  // 1-hop neighbors: select the best first hops whenever the direct link is
  // not itself on a best path in the reduced view.
  for (std::uint32_t v : reduced.one_hop()) {
    const auto& fp = table.fp[v];
    if (std::binary_search(fp.begin(), fp.end(), v)) continue;
    for (std::uint32_t w : fp) in_ans[w] = 1;
  }
  // 2-hop neighbors: every best first hop is advertised.
  for (std::uint32_t v : reduced.two_hop()) {
    for (std::uint32_t w : table.fp[v]) in_ans[w] = 1;
  }

  out.clear();
  for (std::uint32_t w = 0; w < view.size(); ++w)
    if (in_ans[w] != 0) out.push_back(view.global_id(w));
  std::sort(out.begin(), out.end());
}

/// Allocating convenience form (the original API).
template <Metric M>
std::vector<NodeId> select_topology_filtering_ans(const LocalView& view) {
  thread_local SelectionWorkspace ws;
  std::vector<NodeId> result;
  select_topology_filtering_ans<M>(view, ws, result);
  return result;
}

}  // namespace qolsr
