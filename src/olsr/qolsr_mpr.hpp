#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "graph/local_view.hpp"
#include "metrics/metric.hpp"
#include "olsr/selection_workspace.hpp"

namespace qolsr {

/// The two QoS-aware MPR heuristics of QOLSR (Badis & Agha 2005), the
/// paper's first baseline (paper §II):
///
///  * MPR-1 keeps the RFC 3626 shape: phase 1 forces sole covers, phase 2
///    picks the neighbor covering the most uncovered 2-hop nodes, using
///    link QoS only to break coverage ties.
///  * MPR-2 "does not consider the number of covered 2-hop neighbors but
///    the bandwidth or delay when choosing": for every 2-hop neighbor v it
///    nominates the relay w maximizing the QoS of the 2-hop path u·w·v
///    (combine(q(u,w), q(w,v))), ties broken by the better (u,w) link and
///    then the smaller id. This per-target reading is what makes QOLSR's
///    advertised set grow with density (each new 2-hop neighbor can
///    nominate a new relay — the paper's Fig. 6/7 magnitudes) and gives
///    QOLSR its QoS-optimal *two-hop* paths — while still being unable to
///    use paths longer than 2 hops, the root cause of the Fig.-1 miss of
///    the widest path. A sole cover is trivially its targets' nominee, so
///    the RFC phase 1 is subsumed.
///
/// The paper evaluates against MPR-2.
enum class QolsrVariant { kMpr1, kMpr2 };

namespace qolsr_detail {

/// MPR-1: RFC-3626-shaped greedy with QoS tie-breaks. Workspace form; all
/// scratch comes from `ws`, the set lands in `out` (ascending global ids).
template <Metric M>
void select_mpr1(const LocalView& view, SelectionWorkspace& ws,
                 std::vector<NodeId>& out) {
  const auto n = static_cast<std::uint32_t>(view.size());
  ws.covered.assign(n, 0);
  ws.in_ans.assign(n, 0);
  auto& covered = ws.covered;
  auto& selected = ws.in_ans;
  std::size_t uncovered_count = view.two_hop().size();

  ws.reset_covers(n);
  ws.cover_count.assign(n, 0);
  ws.link_value.assign(n, M::unreachable());
  auto& covers = ws.covers;
  for (std::uint32_t w : view.one_hop()) {
    for (const LocalView::LocalEdge& e : view.neighbors(w))
      if (view.is_two_hop(e.to)) covers[w].push_back(e.to);
    for (std::uint32_t v : covers[w]) ++ws.cover_count[v];
    if (const LinkQos* qos =
            view.local_edge_qos(LocalView::origin_index(), w))
      ws.link_value[w] = M::link_value(*qos);
  }

  auto select = [&](std::uint32_t w) {
    selected[w] = 1;
    for (std::uint32_t v : covers[w]) {
      if (!covered[v]) {
        covered[v] = 1;
        --uncovered_count;
      }
    }
  };

  // Phase 1: sole covers are forced.
  for (std::uint32_t w : view.one_hop()) {
    const bool sole = std::any_of(
        covers[w].begin(), covers[w].end(),
        [&](std::uint32_t v) { return ws.cover_count[v] == 1; });
    if (sole) select(w);
  }

  // Phase 2: max coverage, QoS tie-break, id as final tie-break.
  while (uncovered_count > 0) {
    std::uint32_t best = kInvalidNode;
    std::size_t best_gain = 0;
    for (std::uint32_t w : view.one_hop()) {
      if (selected[w]) continue;
      const std::size_t gain = static_cast<std::size_t>(
          std::count_if(covers[w].begin(), covers[w].end(),
                        [&](std::uint32_t v) { return !covered[v]; }));
      if (gain == 0) continue;
      if (best == kInvalidNode) {
        best = w;
        best_gain = gain;
        continue;
      }
      bool take = false;
      if (gain != best_gain) {
        take = gain > best_gain;
      } else if (M::better(ws.link_value[w], ws.link_value[best])) {
        take = true;
      } else if (!M::better(ws.link_value[best], ws.link_value[w])) {
        take = view.global_id(w) < view.global_id(best);
      }
      if (take) {
        best = w;
        best_gain = gain;
      }
    }
    if (best == kInvalidNode) break;  // residual 2-hop nodes are uncoverable
    select(best);
  }

  out.clear();
  for (std::uint32_t w : view.one_hop())
    if (selected[w]) out.push_back(view.global_id(w));
  std::sort(out.begin(), out.end());
}

/// MPR-2: per-2-hop-target nomination of the best 2-hop relay.
template <Metric M>
void select_mpr2(const LocalView& view, SelectionWorkspace& ws,
                 std::vector<NodeId>& out) {
  ws.in_ans.assign(view.size(), 0);
  auto& selected = ws.in_ans;
  for (std::uint32_t v : view.two_hop()) {
    std::uint32_t best = kInvalidNode;
    double best_path = M::unreachable();
    double best_link = M::unreachable();
    for (const LocalView::LocalEdge& e : view.neighbors(v)) {
      const std::uint32_t w = e.to;
      if (!view.is_one_hop(w)) continue;
      const LinkQos* uw = view.local_edge_qos(LocalView::origin_index(), w);
      if (uw == nullptr) continue;
      const double link = M::link_value(*uw);
      const double path = M::combine(link, M::link_value(e.qos));
      bool take = false;
      if (best == kInvalidNode || M::better(path, best_path)) {
        take = true;
      } else if (!M::better(best_path, path)) {
        if (M::better(link, best_link)) {
          take = true;
        } else if (!M::better(best_link, link)) {
          take = view.global_id(w) < view.global_id(best);
        }
      }
      if (take) {
        best = w;
        best_path = path;
        best_link = link;
      }
    }
    if (best != kInvalidNode) selected[best] = 1;
  }

  out.clear();
  for (std::uint32_t w : view.one_hop())
    if (selected[w]) out.push_back(view.global_id(w));
  std::sort(out.begin(), out.end());
}

}  // namespace qolsr_detail

/// Workspace form: identical result to the allocating overload, scratch
/// from `ws`, set written into `out`.
template <Metric M>
void select_qolsr_mpr(const LocalView& view, QolsrVariant variant,
                      SelectionWorkspace& ws, std::vector<NodeId>& out) {
  if (variant == QolsrVariant::kMpr1) {
    qolsr_detail::select_mpr1<M>(view, ws, out);
  } else {
    qolsr_detail::select_mpr2<M>(view, ws, out);
  }
}

template <Metric M>
std::vector<NodeId> select_qolsr_mpr(const LocalView& view,
                                     QolsrVariant variant) {
  thread_local SelectionWorkspace ws;
  std::vector<NodeId> result;
  select_qolsr_mpr<M>(view, variant, ws, result);
  return result;
}

}  // namespace qolsr
