#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/metric_id.hpp"
#include "olsr/selector.hpp"

namespace qolsr {

/// Name → factory map over the neighbor-selection heuristics, so contender
/// lists are data instead of code: an experiment names its protocols
/// ("olsr_mpr", "qolsr_mpr2", "fnbp", …) and the registry instantiates the
/// right AnsSelector template for the experiment's metric. Registration
/// order is preserved — it is the column order of every emitted result.
class SelectorRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<AnsSelector>(MetricId metric)>;

  /// Registers a factory under `name`. Throws std::invalid_argument on a
  /// duplicate name (silent replacement would reorder result columns).
  /// `flooding_factory` names the TC-flooding role the protocol pairs with
  /// its advertised-set heuristic in the packet-level backend: protocols
  /// that flood on their own selection (original OLSR, QOLSR) pass their
  /// own factory; the split QANS designs leave it empty and get RFC 3626
  /// MPR flooding (paper §II–III: topology filtering and FNBP only change
  /// *what is advertised*, not how TCs spread).
  void add(std::string name, Factory factory, Factory flooding_factory = {});

  bool contains(std::string_view name) const;

  /// Instantiates the named heuristic for `metric`. Throws
  /// std::invalid_argument listing the known names when `name` is unknown.
  std::unique_ptr<AnsSelector> create(std::string_view name,
                                      MetricId metric) const;

  /// Instantiates the TC-flooding-role selector paired with the named
  /// protocol (see `add`). Same error contract as `create`.
  std::unique_ptr<AnsSelector> create_flooding(std::string_view name,
                                               MetricId metric) const;

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The five heuristics the paper compares, in its legend order:
  /// olsr_mpr, qolsr_mpr1, qolsr_mpr2, topology_filtering, fnbp.
  static const SelectorRegistry& builtin();

 private:
  struct Entry {
    std::string name;
    Factory factory;
    Factory flooding_factory;  ///< empty = RFC 3626 MPR flooding
  };
  const Entry* find(std::string_view name) const;
  [[noreturn]] void throw_unknown(std::string_view name) const;

  std::vector<Entry> entries_;
};

}  // namespace qolsr
