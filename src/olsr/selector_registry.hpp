#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "metrics/metric_id.hpp"
#include "olsr/selector.hpp"

namespace qolsr {

/// Name → factory map over the neighbor-selection heuristics, so contender
/// lists are data instead of code: an experiment names its protocols
/// ("olsr_mpr", "qolsr_mpr2", "fnbp", …) and the registry instantiates the
/// right AnsSelector template for the experiment's metric. Registration
/// order is preserved — it is the column order of every emitted result.
class SelectorRegistry {
 public:
  using Factory =
      std::function<std::unique_ptr<AnsSelector>(MetricId metric)>;

  /// Registers a factory under `name`. Throws std::invalid_argument on a
  /// duplicate name (silent replacement would reorder result columns).
  void add(std::string name, Factory factory);

  bool contains(std::string_view name) const;

  /// Instantiates the named heuristic for `metric`. Throws
  /// std::invalid_argument listing the known names when `name` is unknown.
  std::unique_ptr<AnsSelector> create(std::string_view name,
                                      MetricId metric) const;

  /// Registered names, in registration order.
  std::vector<std::string> names() const;

  /// The five heuristics the paper compares, in its legend order:
  /// olsr_mpr, qolsr_mpr1, qolsr_mpr2, topology_filtering, fnbp.
  static const SelectorRegistry& builtin();

 private:
  std::vector<std::pair<std::string, Factory>> entries_;
};

}  // namespace qolsr
