#pragma once

#include <cstdint>
#include <vector>

#include "graph/local_view.hpp"
#include "graph/rng_reduction.hpp"
#include "path/dijkstra.hpp"
#include "path/first_hops.hpp"

namespace qolsr {

/// Per-thread scratch bundle for the selection heuristics (FNBP, QOLSR
/// MPR-1/2, RFC 3626 MPR, topology filtering). All vectors are sized to the
/// local view being processed and reused across calls, so running a
/// selection on every node of every sampled topology allocates nothing in
/// steady state (see DESIGN.md §5).
///
/// One instance per worker thread; the fields are owned by whichever
/// heuristic is currently running and carry no state between calls.
struct SelectionWorkspace {
  DijkstraWorkspace dijkstra;   ///< inner Dijkstras of compute_first_hops
  FirstHopTable first_hops;     ///< reused fP table (fp lists keep capacity)
  LocalView reduced_view;       ///< topology filtering's RNG-reduced copy
  RngWitnessScratch rng_witness;  ///< rng_reduce's stamped witness row
  std::vector<std::uint8_t> in_ans;       ///< per-local selection flags
  std::vector<std::uint8_t> covered;      ///< MPR phase-2 coverage flags
  std::vector<std::uint32_t> ids;         ///< small local-id scratch list
  std::vector<std::uint32_t> cover_count; ///< MPR per-2-hop cover counts
  std::vector<double> link_value;         ///< MPR per-neighbor link values
  std::vector<std::vector<std::uint32_t>> covers;  ///< MPR coverage lists

  /// Clears + resizes the MPR coverage lists without freeing row capacity.
  void reset_covers(std::size_t n) {
    if (covers.size() < n) covers.resize(n);
    for (std::size_t i = 0; i < n; ++i) covers[i].clear();
  }
};

}  // namespace qolsr
