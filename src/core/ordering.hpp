#pragma once

#include <cstdint>
#include <span>

#include "graph/local_view.hpp"
#include "metrics/metric.hpp"

namespace qolsr {

/// The paper's total orders ≺_BW / ≺_D on a node's neighbors (§III-A),
/// collapsed into their selection form: `max≺BW` (resp. `min≺D`) picks,
/// among candidate first hops, the one whose *direct link from u* has the
/// best metric value, breaking value ties by smallest identifier.
///
/// (The notation box of the paper garbles the inequality directions — its
/// own worked example "v5 ≺ v1 as BW(u,v5) < BW(u,v1)" and "v1 ≺ v2 because
/// v1 has a smaller identifier" fix the intended order: better link first,
/// then smaller id.)
///
/// `candidates` are local ids of 1-hop neighbors of the view's origin;
/// returns the chosen local id, or kInvalidNode when the span is empty.
template <Metric M>
std::uint32_t pick_best_link(const LocalView& view,
                             std::span<const std::uint32_t> candidates) {
  std::uint32_t best = kInvalidNode;
  double best_value = M::unreachable();
  for (std::uint32_t w : candidates) {
    const LinkQos* qos = view.local_edge_qos(LocalView::origin_index(), w);
    if (qos == nullptr) continue;
    const double value = M::link_value(*qos);
    if (best == kInvalidNode || M::better(value, best_value) ||
        (!M::better(best_value, value) &&
         view.global_id(w) < view.global_id(best))) {
      best = w;
      best_value = value;
    }
  }
  return best;
}

}  // namespace qolsr
