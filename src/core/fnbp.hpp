#pragma once

#include <algorithm>
#include <string>
#include <vector>

#include "core/ordering.hpp"
#include "graph/local_view.hpp"
#include "olsr/selection_workspace.hpp"
#include "olsr/selector.hpp"
#include "path/first_hops.hpp"

namespace qolsr {

/// Tuning knobs for FNBP. The defaults are the paper's Algorithms 1 & 2;
/// the flags exist for the ablation benches.
struct FnbpOptions {
  /// Lines 12–14 of Alg. 1/2: the "limiting last link" guard of Fig. 4.
  /// Disabling it reproduces the A/B loop where a 2-hop neighbor behind a
  /// bottleneck link becomes unreachable.
  bool loop_fix = true;
  /// Pick inside fP by best direct-link QoS with id tie-break (the paper's
  /// max≺/min≺). When false, picks the smallest id only — the ablation
  /// quantifies what the QoS-aware tie-break buys.
  bool qos_tiebreak = true;
};

/// FNBP — *First Node on Best Path* QANS selection, the paper's
/// contribution (§III-B, Algorithms 1 and 2, unified over the metric
/// algebra: instantiate with BandwidthMetric for Alg. 1, DelayMetric for
/// Alg. 2, or any other concave/additive metric).
///
/// For every 1-hop and 2-hop neighbor v of u, with fP(u,v) the first nodes
/// of the QoS-best simple paths u→v inside the local view G_u:
///
///  Step 1 (v ∈ N(u), ascending id):
///    * v ∈ fP(u,v): the direct link is itself a best path — select nothing;
///    * fP(u,v) ∩ ANS ≠ ∅: v is already covered through a selected node;
///    * otherwise select max≺(fP(u,v)) (best direct link, id tie-break).
///
///  Step 2 (v ∈ N²(u), ascending id):
///    * fP(u,v) ∩ ANS = ∅: select max≺(fP(u,v));
///    * else, loop fix: when u's id is smaller than every id in fP(u,v)
///      *and* some best first hop w is itself adjacent to v (the path uwv
///      exists), additionally select max≺ of those — this breaks the
///      mutual-coverage loop of Fig. 4, where the bottleneck last link
///      makes every neighbor "cover" E through everyone else and only the
///      smallest-id node takes responsibility.
///
/// Two transcription fixes versus the PDF listing, both dictated by the
/// paper's prose and worked examples (see DESIGN.md §4): step 1's guard is
/// `v ∉ fP(u,v)` (the listing's `max≺(fP)=v` contradicts the prose), and
/// the loop-fix intersection is with N(v) (`fP ⊆ N(u)` makes the printed
/// `∩ N(u)` vacuous; "a node w such that the path uwv exists" is N(v)).
///
/// Returns ascending global ids in `out` (cleared first). All scratch —
/// the fP table, the inner Dijkstras, the selection flags — comes from
/// `ws`, so sweeping every node of a run allocates nothing in steady state.
template <Metric M>
void select_fnbp_ans(const LocalView& view, SelectionWorkspace& ws,
                     std::vector<NodeId>& out,
                     const FnbpOptions& options = {}) {
  compute_first_hops<M>(view, ws.dijkstra, ws.first_hops);
  const FirstHopTable& table = ws.first_hops;
  ws.in_ans.assign(view.size(), 0);
  auto& in_ans = ws.in_ans;

  auto pick = [&](std::span<const std::uint32_t> candidates) {
    if (!options.qos_tiebreak) {
      // Ablation: smallest global id only. Local one-hop ids are ordered by
      // global id, so the first candidate is the smallest.
      return candidates.empty() ? kInvalidNode : candidates.front();
    }
    return pick_best_link<M>(view, candidates);
  };
  auto covered = [&](const std::vector<std::uint32_t>& fp) {
    return std::any_of(fp.begin(), fp.end(),
                       [&](std::uint32_t w) { return in_ans[w] != 0; });
  };

  // Step 1: 1-hop neighbors (local one-hop ids ascend with global id, which
  // fixes the paper's unspecified iteration order deterministically).
  for (std::uint32_t v : view.one_hop()) {
    const auto& fp = table.fp[v];
    if (fp.empty()) continue;  // unreachable in a filtered view; defensive
    if (std::binary_search(fp.begin(), fp.end(), v)) continue;
    if (covered(fp)) continue;
    const std::uint32_t w = pick(fp);
    if (w != kInvalidNode) in_ans[w] = 1;
  }

  // Step 2: 2-hop neighbors.
  for (std::uint32_t v : view.two_hop()) {
    const auto& fp = table.fp[v];
    if (fp.empty()) continue;
    if (!covered(fp)) {
      const std::uint32_t w = pick(fp);
      if (w != kInvalidNode) in_ans[w] = 1;
      continue;
    }
    if (!options.loop_fix) continue;
    // minid(fP(u,v)) > u: u is smaller than every best first hop, so no one
    // else will break the potential loop.
    const NodeId origin_id = view.origin();
    const bool origin_smallest = std::all_of(
        fp.begin(), fp.end(),
        [&](std::uint32_t w) { return view.global_id(w) > origin_id; });
    if (!origin_smallest) continue;
    std::vector<std::uint32_t>& adjacent_to_v = ws.ids;
    adjacent_to_v.clear();
    for (std::uint32_t w : fp)
      if (view.has_local_edge(w, v)) adjacent_to_v.push_back(w);
    if (adjacent_to_v.empty()) continue;
    const std::uint32_t w = pick(adjacent_to_v);
    if (w != kInvalidNode) in_ans[w] = 1;
  }

  out.clear();
  for (std::uint32_t w = 0; w < view.size(); ++w)
    if (in_ans[w] != 0) out.push_back(view.global_id(w));
  std::sort(out.begin(), out.end());
}

/// Allocating convenience form (the original API).
template <Metric M>
std::vector<NodeId> select_fnbp_ans(const LocalView& view,
                                    const FnbpOptions& options = {}) {
  thread_local SelectionWorkspace ws;
  std::vector<NodeId> result;
  select_fnbp_ans<M>(view, ws, result, options);
  return result;
}

/// FNBP behind the common selector interface.
template <Metric M>
class FnbpSelector final : public AnsSelector {
 public:
  explicit FnbpSelector(FnbpOptions options = {})
      : options_(options), name_(std::string("fnbp_") + std::string(M::name())) {}

  std::string_view name() const override { return name_; }
  std::vector<NodeId> select(const LocalView& view) const override {
    return select_fnbp_ans<M>(view, options_);
  }
  void select_into(const LocalView& view, SelectionWorkspace& ws,
                   std::vector<NodeId>& out) const override {
    select_fnbp_ans<M>(view, ws, out, options_);
  }

 private:
  FnbpOptions options_;
  std::string name_;
};

}  // namespace qolsr
