#pragma once

#include <string>

#include "core/fnbp.hpp"

namespace qolsr {

/// The paper's future-work direction (§V): "multi-criterion metrics, for
/// example minimizing energy-consumption while providing good bandwidth".
///
/// FNBP's structure admits a clean lexicographic composition: the primary
/// metric decides which paths are *best* (so fP sets, coverage and the
/// loop-fix are exactly Algorithm 1/2 on the primary), and the secondary
/// metric refines the choice *inside* fP(u,v) — where the paper's max≺
/// tie-breaks by the primary value of the direct link, the bi-criteria
/// variant tie-breaks by the secondary metric first (e.g. pick, among the
/// first hops of maximum-bandwidth paths, the one whose link costs the
/// least energy), falling back to smallest id.
///
/// This changes none of the selection's coverage/size properties (it still
/// picks exactly one node from the same candidate set) — property-tested in
/// tests/core/multi_criteria_test.cpp — but steers the advertised structure
/// toward cheaper links at equal primary QoS.
template <Metric Primary, Metric Secondary>
std::uint32_t pick_best_link_bicriteria(
    const LocalView& view, std::span<const std::uint32_t> candidates) {
  std::uint32_t best = kInvalidNode;
  double best_secondary = Secondary::unreachable();
  for (std::uint32_t w : candidates) {
    const LinkQos* qos = view.local_edge_qos(LocalView::origin_index(), w);
    if (qos == nullptr) continue;
    const double value = Secondary::link_value(*qos);
    if (best == kInvalidNode || Secondary::better(value, best_secondary) ||
        (!Secondary::better(best_secondary, value) &&
         view.global_id(w) < view.global_id(best))) {
      best = w;
      best_secondary = value;
    }
  }
  return best;
}

/// FNBP with a bi-criteria pick inside fP: Algorithms 1/2 on `Primary`,
/// `Secondary` as the tie-break dimension. Returns ascending global ids.
template <Metric Primary, Metric Secondary>
std::vector<NodeId> select_fnbp_ans_bicriteria(const LocalView& view,
                                               bool loop_fix = true) {
  const FirstHopTable table = compute_first_hops<Primary>(view);
  std::vector<bool> in_ans(view.size(), false);

  auto covered = [&](const std::vector<std::uint32_t>& fp) {
    return std::any_of(fp.begin(), fp.end(),
                       [&](std::uint32_t w) { return in_ans[w]; });
  };
  auto pick = [&](std::span<const std::uint32_t> candidates) {
    return pick_best_link_bicriteria<Primary, Secondary>(view, candidates);
  };

  for (std::uint32_t v : view.one_hop()) {
    const auto& fp = table.fp[v];
    if (fp.empty()) continue;
    if (std::binary_search(fp.begin(), fp.end(), v)) continue;
    if (covered(fp)) continue;
    const std::uint32_t w = pick(fp);
    if (w != kInvalidNode) in_ans[w] = true;
  }
  for (std::uint32_t v : view.two_hop()) {
    const auto& fp = table.fp[v];
    if (fp.empty()) continue;
    if (!covered(fp)) {
      const std::uint32_t w = pick(fp);
      if (w != kInvalidNode) in_ans[w] = true;
      continue;
    }
    if (!loop_fix) continue;
    const NodeId origin_id = view.origin();
    const bool origin_smallest = std::all_of(
        fp.begin(), fp.end(),
        [&](std::uint32_t w) { return view.global_id(w) > origin_id; });
    if (!origin_smallest) continue;
    std::vector<std::uint32_t> adjacent_to_v;
    for (std::uint32_t w : fp)
      if (view.has_local_edge(w, v)) adjacent_to_v.push_back(w);
    if (adjacent_to_v.empty()) continue;
    const std::uint32_t w = pick(adjacent_to_v);
    if (w != kInvalidNode) in_ans[w] = true;
  }

  std::vector<NodeId> result;
  for (std::uint32_t w = 0; w < view.size(); ++w)
    if (in_ans[w]) result.push_back(view.global_id(w));
  std::sort(result.begin(), result.end());
  return result;
}

/// Bi-criteria FNBP behind the selector interface, e.g.
/// `BicriteriaFnbpSelector<BandwidthMetric, EnergyMetric>` for the paper's
/// "good bandwidth at low energy" future-work example.
template <Metric Primary, Metric Secondary>
class BicriteriaFnbpSelector final : public AnsSelector {
 public:
  BicriteriaFnbpSelector()
      : name_(std::string("fnbp_") + std::string(Primary::name()) + "_per_" +
              std::string(Secondary::name())) {}

  std::string_view name() const override { return name_; }
  std::vector<NodeId> select(const LocalView& view) const override {
    return select_fnbp_ans_bicriteria<Primary, Secondary>(view);
  }

 private:
  std::string name_;
};

}  // namespace qolsr
